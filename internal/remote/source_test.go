package remote_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"xmlac"
	"xmlac/internal/dataset"
	"xmlac/internal/remote"
	"xmlac/internal/server"
	"xmlac/internal/trace"
	"xmlac/internal/xmlstream"
)

// reqLog records, per blob request, the Range header the client sent and the
// status the server answered: the observable behaviour the coalescing,
// prefetch and revalidation tests assert on.
type reqLog struct {
	mu         sync.Mutex
	blobRanges []string
	blobStatus []int
	hashChunks []string
	// blobTraceIDs / blobSpanIDs record the trace-propagation headers
	// (X-Request-Id / X-Xmlac-Span-Id) of each blob request, empty strings
	// when absent.
	blobTraceIDs []string
	blobSpanIDs  []string
}

func (l *reqLog) snapshotRanges() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.blobRanges...)
}

func (l *reqLog) lastStatus() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.blobStatus) == 0 {
		return 0
	}
	return l.blobStatus[len(l.blobStatus)-1]
}

func (l *reqLog) blobRequests() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.blobRanges)
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func withLog(log *reqLog, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.mu.Lock()
		switch {
		case strings.HasSuffix(r.URL.Path, "/blob"):
			log.blobRanges = append(log.blobRanges, r.Header.Get("Range"))
			log.blobStatus = append(log.blobStatus, rec.status)
			log.blobTraceIDs = append(log.blobTraceIDs, r.Header.Get("X-Request-Id"))
			log.blobSpanIDs = append(log.blobSpanIDs, r.Header.Get("X-Xmlac-Span-Id"))
		case strings.HasSuffix(r.URL.Path, "/hashes"):
			log.hashChunks = append(log.hashChunks, r.URL.Query().Get("chunk"))
		}
		log.mu.Unlock()
	})
}

// testEnv is one registered hospital document behind an instrumented server.
type testEnv struct {
	ts     *httptest.Server
	srv    *server.Server
	log    *reqLog
	docURL string
	// blob is the marshalled container; ciphertext and ctOff locate the
	// encrypted body inside it, so tests can assert byte-exact reads.
	blob       []byte
	ciphertext []byte
	ctOff      int64
	key        xmlac.Key
}

const testPassphrase = "remote-test"

func newEnv(t testing.TB, folders int) *testEnv {
	t.Helper()
	srv := server.New(server.Options{})
	xml := xmlstream.SerializeTree(dataset.HospitalFolders(folders, 7), false)
	if _, err := srv.Store().RegisterXML("hospital", xml, testPassphrase, xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	log := &reqLog{}
	ts := httptest.NewServer(withLog(log, srv.Handler()))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/docs/hospital/blob")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prot, err := xmlac.UnmarshalProtected(blob)
	if err != nil {
		t.Fatal(err)
	}
	ctOff := prot.Manifest().CiphertextOffset
	env := &testEnv{
		ts:         ts,
		srv:        srv,
		log:        log,
		docURL:     ts.URL + "/docs/hospital",
		blob:       blob,
		ciphertext: blob[ctOff:],
		ctOff:      ctOff,
		key:        xmlac.DeriveKey(testPassphrase),
	}
	// The setup GET above is not part of any test's expectations.
	log.mu.Lock()
	log.blobRanges, log.blobStatus = nil, nil
	log.blobTraceIDs, log.blobSpanIDs = nil, nil
	log.mu.Unlock()
	return env
}

// open builds a Source and clears the request log of the open-time traffic.
func (e *testEnv) open(t testing.TB, opts remote.Options) *remote.Source {
	t.Helper()
	src, err := remote.Open(e.docURL, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.log.mu.Lock()
	e.log.blobRanges, e.log.blobStatus = nil, nil
	e.log.blobTraceIDs, e.log.blobSpanIDs = nil, nil
	e.log.mu.Unlock()
	return src
}

// mustRange reads a ciphertext range and asserts it matches the blob.
func (e *testEnv) mustRange(t *testing.T, src *remote.Source, off, n int64) {
	t.Helper()
	got, err := src.CiphertextRange(off, n)
	if err != nil {
		t.Fatalf("CiphertextRange(%d, %d): %v", off, n, err)
	}
	if !bytes.Equal(got, e.ciphertext[off:off+n]) {
		t.Fatalf("CiphertextRange(%d, %d) returned wrong bytes", off, n)
	}
}

func TestOpenFetchesManifestAndDigestTable(t *testing.T) {
	env := newEnv(t, 6)
	src, err := remote.Open(env.docURL, remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	man := src.Manifest()
	if man.CiphertextLen != int64(len(env.ciphertext)) {
		t.Fatalf("manifest ciphertext length %d, want %d", man.CiphertextLen, len(env.ciphertext))
	}
	if man.NumDigests == 0 || man.NumChunks() == 0 {
		t.Fatalf("manifest misses digest layout: %+v", man)
	}
	st := src.Stats()
	if st.RoundTrips != 2 {
		t.Fatalf("open should cost two round trips (manifest + prefix), got %d", st.RoundTrips)
	}
	if st.BytesOnWire <= 0 {
		t.Fatalf("open transferred nothing")
	}
	if src.ETag() == "" {
		t.Fatal("source did not capture the blob ETag")
	}
	// The digest table is local now: ChunkDigest must not hit the network.
	before := src.Stats()
	if _, err := src.ChunkDigest(0); err != nil {
		t.Fatal(err)
	}
	if after := src.Stats(); after.RoundTrips != before.RoundTrips {
		t.Fatal("ChunkDigest should be served from the prefetched table")
	}
}

// TestAdjacentMissesCoalesceIntoOneRange: a read spanning several uncached
// pages issues exactly one request with one contiguous range.
func TestAdjacentMissesCoalesceIntoOneRange(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: -1})
	env.mustRange(t, src, 0, 200)
	ranges := env.log.snapshotRanges()
	if len(ranges) != 1 {
		t.Fatalf("expected one blob request, got %v", ranges)
	}
	want := "bytes=" + rangeSpec(env.ctOff, 0, 256)
	if ranges[0] != want {
		t.Fatalf("range header %q, want %q (pages 0-3 coalesced)", ranges[0], want)
	}
}

// TestOverlappingReadsServedFromCache: re-reading overlapping ranges only
// fetches the pages not yet resident.
func TestOverlappingReadsServedFromCache(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: -1})
	env.mustRange(t, src, 0, 128)  // pages 0,1
	env.mustRange(t, src, 64, 128) // page 1 cached, page 2 missing
	env.mustRange(t, src, 32, 96)  // fully cached: no request
	ranges := env.log.snapshotRanges()
	if len(ranges) != 2 {
		t.Fatalf("expected two blob requests, got %v", ranges)
	}
	if want := "bytes=" + rangeSpec(env.ctOff, 128, 192); ranges[1] != want {
		t.Fatalf("second fetch %q, want only the missing page %q", ranges[1], want)
	}
}

// TestGapThresholdBoundary: two miss spans separated by exactly the gap
// threshold merge into one range; one byte past the threshold they stay two
// ranges — still a single round trip, as a multi-range request.
func TestGapThresholdBoundary(t *testing.T) {
	t.Run("gap-equal-threshold-merges", func(t *testing.T) {
		env := newEnv(t, 6)
		src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: 64})
		env.mustRange(t, src, 64, 64) // prime page 1
		env.mustRange(t, src, 0, 192) // pages {0,2} missing, 64-byte gap
		ranges := env.log.snapshotRanges()
		if len(ranges) != 2 {
			t.Fatalf("expected two blob requests total, got %v", ranges)
		}
		if want := "bytes=" + rangeSpec(env.ctOff, 0, 192); ranges[1] != want {
			t.Fatalf("gap == threshold should merge into %q, got %q", want, ranges[1])
		}
	})
	t.Run("gap-past-threshold-splits", func(t *testing.T) {
		env := newEnv(t, 6)
		src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: 63})
		env.mustRange(t, src, 64, 64) // prime page 1
		env.mustRange(t, src, 0, 192) // pages {0,2}: gap 64 > 63
		ranges := env.log.snapshotRanges()
		if len(ranges) != 2 {
			t.Fatalf("expected two blob requests total (split ranges share one), got %v", ranges)
		}
		want := "bytes=" + rangeSpec(env.ctOff, 0, 64) + "," + rangeSpec(env.ctOff, 128, 192)
		if ranges[1] != want {
			t.Fatalf("multi-range header %q, want %q", ranges[1], want)
		}
	})
}

// TestReadAheadPrefetch: a miss extends the fetch by the read-ahead window
// and the prefetched pages serve later reads without new requests.
func TestReadAheadPrefetch(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: 2, GapThreshold: -1})
	env.mustRange(t, src, 0, 64) // page 0 + read-ahead pages 1,2
	ranges := env.log.snapshotRanges()
	if want := "bytes=" + rangeSpec(env.ctOff, 0, 192); len(ranges) != 1 || ranges[0] != want {
		t.Fatalf("read-ahead fetch %v, want [%q]", ranges, want)
	}
	env.mustRange(t, src, 64, 128) // prefetched: no request
	if got := env.log.blobRequests(); got != 1 {
		t.Fatalf("prefetched pages should serve later reads, saw %d requests", got)
	}
}

// TestEOFTruncatedReadAhead: read-ahead near the end of the document clamps
// at EOF — the request never extends past the blob and the trailing partial
// page round-trips correctly through the cache.
func TestEOFTruncatedReadAhead(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: 8, GapThreshold: -1})
	ctLen := int64(len(env.ciphertext))
	lastPageStart := (ctLen - 1) / 64 * 64
	// Land three pages before the end (a jump: no read-ahead), then continue
	// sequentially: the 8-page read-ahead must truncate at EOF.
	off := lastPageStart - 128
	env.mustRange(t, src, off-64, 64)
	env.mustRange(t, src, off, 64)
	ranges := env.log.snapshotRanges()
	if len(ranges) != 2 {
		t.Fatalf("expected two blob requests, got %v", ranges)
	}
	if want := "bytes=" + rangeSpec(env.ctOff, off-64, off); ranges[0] != want {
		t.Fatalf("jump landing fetched %q, want %q (no read-ahead on a jump)", ranges[0], want)
	}
	if want := "bytes=" + rangeSpec(env.ctOff, off, ctLen); ranges[1] != want {
		t.Fatalf("EOF-truncated read-ahead sent %q, want %q", ranges[1], want)
	}
	// The tail (including the partial last page) is now resident.
	env.mustRange(t, src, ctLen-10, 10)
	env.mustRange(t, src, lastPageStart, ctLen-lastPageStart)
	if got := env.log.blobRequests(); got != 2 {
		t.Fatalf("tail reads after prefetch should be cache hits, saw %d requests", got)
	}
}

// TestNoReadAheadOnJump: a fetch that does not continue the previous request
// (a Skip-index jump landing) carries no read-ahead — prefetching past a
// jump target would mostly fetch bytes the evaluator is about to skip.
func TestNoReadAheadOnJump(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: 2, GapThreshold: -1})
	env.mustRange(t, src, 0, 64)   // sequential start: pages 0 + read-ahead 1,2
	env.mustRange(t, src, 640, 64) // jump: page 10 only
	env.mustRange(t, src, 704, 64) // continues the jump: read-ahead resumes
	ranges := env.log.snapshotRanges()
	want := []string{
		"bytes=" + rangeSpec(env.ctOff, 0, 192),
		"bytes=" + rangeSpec(env.ctOff, 640, 704),
		"bytes=" + rangeSpec(env.ctOff, 704, 896),
	}
	if len(ranges) != len(want) {
		t.Fatalf("expected %d blob requests, got %v", len(want), ranges)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("request %d: %q, want %q", i, ranges[i], want[i])
		}
	}
}

// TestLRUChunkCacheBound: the cache never exceeds its capacity and evicted
// pages are re-fetched on demand.
func TestLRUChunkCacheBound(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: -1, CacheCapacity: 4})
	for p := int64(0); p < 8; p++ {
		env.mustRange(t, src, p*64, 64)
	}
	if got := src.CachedPages(); got > 4 {
		t.Fatalf("cache holds %d pages, capacity is 4", got)
	}
	before := env.log.blobRequests()
	env.mustRange(t, src, 0, 64) // page 0 was evicted: must re-fetch
	if got := env.log.blobRequests(); got != before+1 {
		t.Fatalf("evicted page should be re-fetched, requests %d -> %d", before, got)
	}
}

// TestRevalidate: an unchanged blob answers the conditional request with
// 304 Not Modified; after a re-registration the source flushes and reloads.
func TestRevalidate(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1})
	env.mustRange(t, src, 0, 64)

	changed, err := src.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("unchanged blob reported as changed")
	}
	if status := env.log.lastStatus(); status != http.StatusNotModified {
		t.Fatalf("revalidation of an unchanged blob got status %d, want 304", status)
	}

	// Replace the document (different content, same id) and revalidate.
	xml := xmlstream.SerializeTree(dataset.HospitalFolders(9, 11), false)
	if _, err := env.srv.Store().RegisterXML("hospital", xml, testPassphrase, xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	oldETag := src.ETag()
	changed, err = src.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("replaced blob not detected")
	}
	if src.ETag() == oldETag {
		t.Fatal("ETag not refreshed after revalidation")
	}
	if src.CachedPages() != 0 {
		t.Fatal("page cache not flushed after the blob changed")
	}
}

// TestChangedBlobDetectedMidStream: when the blob is replaced under a live
// source, the If-Range guard turns the next fetch into a full 200 response
// with a new ETag and the source fails with ErrChanged instead of mixing
// bytes of two documents.
func TestChangedBlobDetectedMidStream(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1})
	env.mustRange(t, src, 0, 64)
	xml := xmlstream.SerializeTree(dataset.HospitalFolders(9, 11), false)
	if _, err := env.srv.Store().RegisterXML("hospital", xml, testPassphrase, xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	if _, err := src.CiphertextRange(1024, 64); !errors.Is(err, remote.ErrChanged) {
		t.Fatalf("expected ErrChanged after blob replacement, got %v", err)
	}
}

// TestFragmentHashesFetchedOncePerChunk: the hashes endpoint is hit at most
// once per chunk and the payload splits into DigestSize records.
func TestFragmentHashesFetchedOncePerChunk(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{})
	h1, err := src.FragmentHashes(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h1) != src.Manifest().NumFragments(0) {
		t.Fatalf("got %d fragment hashes, want %d", len(h1), src.Manifest().NumFragments(0))
	}
	before := src.Stats()
	if _, err := src.FragmentHashes(0); err != nil {
		t.Fatal(err)
	}
	if after := src.Stats(); after.RoundTrips != before.RoundTrips {
		t.Fatal("second FragmentHashes call for the same chunk hit the network")
	}
	env.log.mu.Lock()
	hashReqs := len(env.log.hashChunks)
	env.log.mu.Unlock()
	if hashReqs != 1 {
		t.Fatalf("hashes endpoint hit %d times, want 1", hashReqs)
	}
}

// TestWireBytesCounted: every response body byte is charged to BytesOnWire.
func TestWireBytesCounted(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1})
	before := src.Stats()
	env.mustRange(t, src, 0, 64)
	after := src.Stats()
	if delta := after.BytesOnWire - before.BytesOnWire; delta < 64 {
		t.Fatalf("64-byte page fetch charged only %d wire bytes", delta)
	}
	if after.RoundTrips != before.RoundTrips+1 {
		t.Fatalf("expected one round trip, got %d", after.RoundTrips-before.RoundTrips)
	}
}

// rangeSpec renders the Range header span for ciphertext bytes [from, to)
// shifted by the blob's ciphertext offset.
func rangeSpec(ctOff, from, to int64) string {
	return strconv.FormatInt(ctOff+from, 10) + "-" + strconv.FormatInt(ctOff+to-1, 10)
}

// TestTracePropagationHeaders: while a tracing context is attached, every
// outgoing request carries the trace ID (X-Request-Id) and the evaluation's
// root span ID (X-Xmlac-Span-Id); detaching the context stops the stamping.
func TestTracePropagationHeaders(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{PageSize: 64, ReadAhead: -1, GapThreshold: -1})
	tr := trace.New(trace.NewRecorder(16), "trace-0042")
	if tr.SpanID() == "" {
		t.Fatal("tracing context has no span ID")
	}
	src.SetTrace(tr)
	env.mustRange(t, src, 0, 64)
	src.SetTrace(nil)
	env.mustRange(t, src, 1024, 64)

	env.log.mu.Lock()
	traceIDs := append([]string(nil), env.log.blobTraceIDs...)
	spanIDs := append([]string(nil), env.log.blobSpanIDs...)
	env.log.mu.Unlock()
	if len(traceIDs) != 2 {
		t.Fatalf("expected 2 blob requests, got %d", len(traceIDs))
	}
	if traceIDs[0] != "trace-0042" || spanIDs[0] != tr.SpanID() {
		t.Fatalf("traced fetch sent headers (%q, %q), want (%q, %q)",
			traceIDs[0], spanIDs[0], "trace-0042", tr.SpanID())
	}
	if traceIDs[1] != "" || spanIDs[1] != "" {
		t.Fatalf("untraced fetch still stamped (%q, %q)", traceIDs[1], spanIDs[1])
	}
}

// TestContextCancelClosesInFlightFetch: canceling the context attached with
// SetContext aborts a range request the server is still holding open, instead
// of waiting for the response.
func TestContextCancelClosesInFlightFetch(t *testing.T) {
	srv := server.New(server.Options{})
	xml := xmlstream.SerializeTree(dataset.HospitalFolders(6, 7), false)
	if _, err := srv.Store().RegisterXML("hospital", xml, testPassphrase, xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	var blocking atomic.Bool
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	handler := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blocking.Load() && strings.HasSuffix(r.URL.Path, "/blob") {
			arrived <- struct{}{}
			select {
			case <-r.Context().Done():
				return // the cancellation propagated to the server
			case <-release:
			}
		}
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer close(release)

	src, err := remote.Open(ts.URL+"/docs/hospital", remote.Options{PageSize: 64, ReadAhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	blocking.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	src.SetContext(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := src.CiphertextRange(0, 64)
		errc <- err
	}()
	<-arrived // the request is in flight, held open by the handler
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled fetch returned %v, want context.Canceled", err)
	}
	// Detached, the source works again (nil context unbinds the requests).
	blocking.Store(false)
	src.SetContext(nil)
	if _, err := src.CiphertextRange(0, 64); err != nil {
		t.Fatalf("fetch after detaching the canceled context: %v", err)
	}
}
