package remote_test

import (
	"bytes"
	"strings"
	"testing"

	"xmlac"
	"xmlac/internal/dataset"
	"xmlac/internal/remote"
	"xmlac/internal/xmlstream"
)

// hospitalXMLFolders serializes the generator document newEnv registers.
func hospitalXMLFolders(n int) string {
	return xmlstream.SerializeTree(dataset.HospitalFolders(n, 7), false)
}

// updateEnvDoc applies one server-side edit and returns the delta.
func updateEnvDoc(t *testing.T, env *testEnv, edits ...xmlac.Edit) *xmlac.UpdateDelta {
	t.Helper()
	entry, err := env.srv.Store().Entry("hospital")
	if err != nil {
		t.Fatal(err)
	}
	_, delta, err := entry.Update(edits)
	if err != nil {
		t.Fatal(err)
	}
	return delta
}

// TestDeltaResyncKeepsCleanChunks: after a small server-side update, a
// Revalidate must evict only the pages of the chunks the delta names — the
// rest of the chunk cache survives and is counted in ChunksReused — and
// reads against the new version must return the new ciphertext.
func TestDeltaResyncKeepsCleanChunks(t *testing.T) {
	env := newEnv(t, 16)
	src := env.open(t, remote.Options{})
	man := src.Manifest()
	if man.Version != 1 {
		t.Fatalf("remote manifest at version %d, want 1", man.Version)
	}
	// Warm the whole cache.
	env.mustRange(t, src, 0, man.CiphertextLen)
	pagesBefore := src.CachedPages()
	if pagesBefore == 0 {
		t.Fatal("cache empty after a full read")
	}

	// A same-length field edit dirties one or two chunks out of many.
	delta := updateEnvDoc(t, env, xmlac.Edit{
		Op: xmlac.EditSetText, Path: "/Hospital/Folder[9]/Admin/Phone", Text: "5550005555",
	})
	if len(delta.DirtyChunks) == 0 || len(delta.DirtyChunks) > 2 {
		t.Fatalf("same-length edit dirtied %d chunks, want 1-2 of %d", len(delta.DirtyChunks), delta.NumChunks)
	}

	changed, err := src.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Revalidate must report the update")
	}
	if got := src.Manifest().Version; got != 2 {
		t.Fatalf("source bound to version %d after resync, want 2", got)
	}
	st := src.Stats()
	if st.ChunksReused == 0 {
		t.Fatal("delta resync reused no chunks (flushed instead of evicting selectively)")
	}
	if int64(delta.NumChunks)-int64(len(delta.DirtyChunks)) != st.ChunksReused {
		t.Fatalf("ChunksReused = %d, want every clean chunk (%d of %d)",
			st.ChunksReused, delta.NumChunks-len(delta.DirtyChunks), delta.NumChunks)
	}
	pageSize := int64(remote.DefaultPageSize)
	maxEvicted := (int64(man.ChunkSize)/pageSize + 2) * int64(len(delta.DirtyChunks))
	if evicted := int64(pagesBefore - src.CachedPages()); evicted > maxEvicted {
		t.Fatalf("resync evicted %d pages, dirty chunks only cover ~%d", evicted, maxEvicted)
	}

	// Reads now see the new version's ciphertext.
	newBlob, _ := mustEntryBlob(t, env)
	newCT := newBlob[env.ctOff:]
	start, end := man.ChunkBounds(delta.DirtyChunks[0])
	got, err := src.CiphertextRange(start, end-start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newCT[start:end]) {
		t.Fatal("dirty chunk read does not match the updated blob")
	}
	if bytes.Equal(newCT[start:end], env.ciphertext[start:end]) {
		t.Fatal("test is vacuous: the dirty chunk did not actually change")
	}
}

func mustEntryBlob(t *testing.T, env *testEnv) ([]byte, string) {
	t.Helper()
	entry, err := env.srv.Store().Entry("hospital")
	if err != nil {
		t.Fatal(err)
	}
	blob, etag := entry.Blob()
	return blob, etag
}

// TestResyncFallsBackToFullReload: when no delta is available (the document
// was re-registered, resetting the version chain), Revalidate still lands on
// the new content via the flush path.
func TestResyncFallsBackToFullReload(t *testing.T) {
	env := newEnv(t, 6)
	src := env.open(t, remote.Options{})
	env.mustRange(t, src, 0, src.Manifest().CiphertextLen)

	// Replace the document wholesale: version goes back to 1, no deltas.
	xml := strings.Replace(hospitalXMLFolders(6), "<Hospital>", "<Hospital><Folder><Admin><Fname>fresh</Fname></Admin></Folder>", 1)
	if _, err := env.srv.Store().RegisterXML("hospital", xml, testPassphrase, xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	changed, err := src.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Revalidate must report the replacement")
	}
	if st := src.Stats(); st.ChunksReused != 0 {
		t.Fatalf("full reload must not claim reused chunks, got %d", st.ChunksReused)
	}
	blob, _ := mustEntryBlob(t, env)
	man := src.Manifest()
	got, err := src.CiphertextRange(0, man.CiphertextLen)
	if err != nil {
		t.Fatal(err)
	}
	ctOff := int64(len(blob)) - man.CiphertextLen
	if !bytes.Equal(got, blob[ctOff:]) {
		t.Fatal("reads after a full reload do not match the new blob")
	}
}

// TestRemoteDocumentTransparentResync: a RemoteDocument whose server-side
// document is updated between (or under) evaluations re-syncs by itself —
// the next AuthorizedView returns the new version's view, byte-identical to
// a local evaluation, with ChunksReused surfaced in its metrics.
func TestRemoteDocumentTransparentResync(t *testing.T) {
	env := newEnv(t, 16)
	// The cache must be smaller than the evaluation's working set: a fully
	// warm cache would keep serving the stale version consistently (which is
	// legal) instead of exercising the change-detection path.
	doc, err := xmlac.OpenRemoteOptions(env.docURL, env.key, xmlac.RemoteOptions{CacheCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	clerk, err := xmlac.Policy{Subject: "clerk", Rules: []xmlac.Rule{{ID: "S1", Sign: "+", Object: "//Admin"}}}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.AuthorizedViewCompiled(clerk, xmlac.ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	if doc.Version() != 1 {
		t.Fatalf("remote document at version %d, want 1", doc.Version())
	}

	// A same-length Phone edit keeps the update chunk-granular (1-2 dirty
	// chunks), so plenty of resident pages belong to clean chunks.
	updateEnvDoc(t, env, xmlac.Edit{
		Op: xmlac.EditSetText, Path: "/Hospital/Folder[3]/Admin/Phone", Text: "5551234567",
	})

	// No explicit Revalidate: the evaluation hits the changed blob
	// (If-Range falls back to a 200 with a new ETag), re-syncs through the
	// delta and retries.
	view, metrics, err := doc.AuthorizedViewCompiled(clerk, xmlac.ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version() != 2 {
		t.Fatalf("remote document at version %d after transparent resync, want 2", doc.Version())
	}
	if !strings.Contains(view.XML(), "5551234567") {
		t.Fatal("view after transparent resync misses the edit")
	}
	if metrics.ChunksReused == 0 {
		t.Fatal("transparent resync metrics claim no reused chunks")
	}

	// Byte-identity with a local evaluation of the updated document.
	entry, err := env.srv.Store().Entry("hospital")
	if err != nil {
		t.Fatal(err)
	}
	localView, localMetrics, err := entry.View(clerk, xmlac.ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if view.XML() != localView.XML() {
		t.Fatal("remote view after resync differs from the local view")
	}
	if metrics.BytesTransferred != localMetrics.BytesTransferred || metrics.BytesSkipped != localMetrics.BytesSkipped {
		t.Fatalf("SOE metrics diverge after resync: remote %+v vs local %+v", metrics, localMetrics)
	}
}
