package remote

import "container/list"

// pageLRU is the bounded chunk cache of the remote source: fixed-size
// ciphertext pages keyed by page index, evicted least-recently-used. The
// secure reader above it issues many tiny overlapping reads (block-granular
// decryption, CBC previous-block lookups); the cache turns those into cheap
// memory hits so each page crosses the wire at most once while it stays
// resident.
type pageLRU struct {
	cap int
	ll  *list.List // front = most recently used; Value is *pageEntry
	m   map[int64]*list.Element
}

type pageEntry struct {
	idx  int64
	data []byte
}

func newPageLRU(capacity int) *pageLRU {
	return &pageLRU{cap: capacity, ll: list.New(), m: make(map[int64]*list.Element)}
}

// contains reports residency without bumping recency (used to compute the
// miss set of a request before fetching).
func (c *pageLRU) contains(idx int64) bool {
	_, ok := c.m[idx]
	return ok
}

// get returns the page bytes and marks the page most recently used.
func (c *pageLRU) get(idx int64) ([]byte, bool) {
	el, ok := c.m[idx]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*pageEntry).data, true
}

// put inserts or refreshes a page, evicting from the cold end past capacity.
func (c *pageLRU) put(idx int64, data []byte) {
	if el, ok := c.m[idx]; ok {
		el.Value.(*pageEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	c.m[idx] = c.ll.PushFront(&pageEntry{idx: idx, data: data})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*pageEntry).idx)
	}
}

func (c *pageLRU) len() int { return c.ll.Len() }

// remove drops one page if resident (delta-driven invalidation).
func (c *pageLRU) remove(idx int64) {
	if el, ok := c.m[idx]; ok {
		c.ll.Remove(el)
		delete(c.m, idx)
	}
}

// removeAbove drops every page with an index greater than max (the document
// shrank: pages past the new end of ciphertext are no longer addressable).
func (c *pageLRU) removeAbove(max int64) {
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*pageEntry); e.idx > max {
			c.ll.Remove(el)
			delete(c.m, e.idx)
		}
		el = next
	}
}

func (c *pageLRU) reset() {
	c.ll.Init()
	clear(c.m)
}
