package skipindex

import (
	"errors"
	"fmt"

	"xmlac/internal/xmlstream"
)

// ErrNotDecomposable reports a document whose scan cannot be partitioned
// into regions: the root element has no children (leaf or text-only root),
// so there is nothing below the shared prefix to hand out to workers.
var ErrNotDecomposable = errors.New("skipindex: document not decomposable into regions")

// Region is one contiguous run of the root element's children, identified
// by its encoded byte extent. Regions partition [childrenStart, rootEnd):
// every child of the root belongs to exactly one region, and a region
// decoder scans exactly its extent.
type Region struct {
	// Start and End bound the region's encoded bytes: Start is the first
	// child's element start, End the offset one past the last child's
	// subtree (the next region's Start, or the root's end offset).
	Start, End int64
	// FirstChild and NumChildren locate the region among the root's
	// children in document order.
	FirstChild, NumChildren int
}

// RegionPlan is the result of PlanRegions: the shared document prefix (the
// root element's Open and direct-text events, replayed identically by every
// consumer) plus a partition of the root's children into byte-balanced
// regions. The plan is immutable after construction and safe to share
// across goroutines; each worker builds its own Decoder from it with
// NewRegionDecoder.
type RegionPlan struct {
	dict []string

	prefix []xmlstream.Event

	rootName     string
	rootDescIDs  []int
	rootDescTags map[string]struct{}
	rootSize     uint64
	rootEndOff   int64

	bodySize      uint64
	bytesTotal    int64
	childrenStart int64

	regions []Region
}

// PlanRegions decodes the document prefix (root open + direct text) and
// walks the root's direct children shallowly — reading only each child's
// fixed-size metadata, never descending — to partition the document body
// into at most maxRegions byte-balanced regions. The walk costs one small
// read per root child; on the secure reader those reads land in already
// verified chunks that the scan itself would fetch anyway, so the planning
// overhead is bounded by one chunk re-decrypt per region boundary.
//
// Returns ErrNotDecomposable when the root has no children.
func PlanRegions(src ByteSource, maxRegions int) (*RegionPlan, error) {
	if maxRegions < 1 {
		maxRegions = 1
	}
	d, err := NewDecoder(src)
	if err != nil {
		return nil, err
	}
	openEv, err := d.Next()
	if err != nil {
		return nil, err
	}
	if openEv.Kind != xmlstream.Open || len(d.stack) != 2 {
		return nil, fmt.Errorf("%w: document does not start with a root element", ErrBadFormat)
	}
	prefix := []xmlstream.Event{openEv}
	prefix = append(prefix, d.pending...) // the root's direct-text event, if any
	root := d.stack[1]

	p := &RegionPlan{
		dict:          d.dict,
		prefix:        prefix,
		rootName:      root.name,
		rootDescIDs:   root.descIDs,
		rootDescTags:  root.descTags,
		rootSize:      root.size,
		rootEndOff:    root.endOff,
		bodySize:      d.stack[0].size,
		bytesTotal:    d.bytesTotal,
		childrenStart: d.off,
	}
	if p.childrenStart >= p.rootEndOff {
		return nil, ErrNotDecomposable
	}

	// Shallow child walk: each child's subtree size is in its metadata, so
	// the extent chain [start, start+size) is readable without decoding any
	// grandchild. Widths mirror decodeElement with the root as parent.
	tagBits := bitsForCount(len(root.descIDs))
	sizeBits := bitsFor(root.size)
	maxMeta := (1 + int(tagBits) + int(sizeBits) + len(root.descIDs) + 7) / 8
	type childExtent struct {
		start int64
		size  int64
	}
	var children []childExtent
	buf := make([]byte, maxMeta)
	for off := p.childrenStart; off < p.rootEndOff; {
		n, err := src.ReadAt(buf, off)
		if n < len(buf) && err != nil && n == 0 {
			return nil, fmt.Errorf("%w: reading child meta at offset %d: %w", ErrBadFormat, off, err)
		}
		r := newBitReader(buf[:n])
		if _, ok := r.readBool(); !ok { // isLeaf bit
			return nil, fmt.Errorf("%w: truncated child meta at offset %d", ErrBadFormat, off)
		}
		tagIdx, ok := r.readBits(tagBits)
		if !ok {
			return nil, fmt.Errorf("%w: truncated child tag index at offset %d", ErrBadFormat, off)
		}
		if int(tagIdx) >= len(root.descIDs) {
			return nil, fmt.Errorf("%w: child tag index %d out of range at offset %d", ErrBadFormat, tagIdx, off)
		}
		size, ok := r.readBits(sizeBits)
		if !ok {
			return nil, fmt.Errorf("%w: truncated child subtree size at offset %d", ErrBadFormat, off)
		}
		if size == 0 || off+int64(size) > p.rootEndOff {
			return nil, fmt.Errorf("%w: child subtree size %d at offset %d overruns root extent", ErrBadFormat, size, off)
		}
		children = append(children, childExtent{start: off, size: int64(size)})
		off += int64(size)
	}
	// The loop exits only when off == rootEndOff (an overshoot errors above),
	// so the extents tile the body exactly.

	numRegions := maxRegions
	if numRegions > len(children) {
		numRegions = len(children)
	}
	// Greedy byte balancing: each region takes children until it holds its
	// fair share of the remaining bytes, always leaving at least one child
	// per remaining region.
	remaining := p.rootEndOff - p.childrenStart
	i := 0
	p.regions = make([]Region, 0, numRegions)
	for r := 0; r < numRegions; r++ {
		regionsAfter := numRegions - r - 1
		target := remaining / int64(numRegions-r)
		first := i
		var taken int64
		for i < len(children) {
			if i > first && (taken >= target || len(children)-i <= regionsAfter) {
				break
			}
			taken += children[i].size
			i++
		}
		p.regions = append(p.regions, Region{
			Start:       children[first].start,
			End:         children[i-1].start + children[i-1].size,
			FirstChild:  first,
			NumChildren: i - first,
		})
		remaining -= taken
	}
	return p, nil
}

// Prefix returns the shared document prefix: the root element's Open event
// and its direct-text event when present. Every consumer of a region plan
// replays this prefix before its region's events; the root's Close event is
// not part of any region and is emitted by whoever stitches regions back
// together.
func (p *RegionPlan) Prefix() []xmlstream.Event {
	return append([]xmlstream.Event(nil), p.prefix...)
}

// RootName returns the tag name of the document root.
func (p *RegionPlan) RootName() string { return p.rootName }

// RootDescendantTags returns the descendant-tag set of the root element —
// the MetaProvider answer a whole-document decoder would give right after
// the root opens.
func (p *RegionPlan) RootDescendantTags() map[string]struct{} { return p.rootDescTags }

// RootSkipDistance returns the number of encoded bytes a SkipToClose at the
// root (depth 1) jumps over when issued immediately after the prefix: the
// whole children extent. A consumer that denies the root subtree skips this
// many bytes on the serial path, and the same amount must be charged on the
// parallel path for the per-subject accounting to match.
func (p *RegionPlan) RootSkipDistance() int64 { return p.rootEndOff - p.childrenStart }

// Regions returns the planned regions in document order.
func (p *RegionPlan) Regions() []Region { return append([]Region(nil), p.regions...) }

// RegionCount returns the number of planned regions.
func (p *RegionPlan) RegionCount() int { return len(p.regions) }

// NewRegionDecoder returns a Decoder positioned at the start of region r of
// the plan, as if a whole-document decoder had consumed the prefix and all
// earlier regions without reading them: the open stack already holds the
// root element, CurrentDescendantTags answers for the root (so replaying
// the prefix through an evaluator sees the same metadata as the serial
// scan), and the decoder reports end-of-document — with the root still open
// and no root Close emitted — when the region's extent is exhausted.
//
// src must present the same encoded document the plan was built from; each
// worker passes its own reader so decoders never share mutable state.
func NewRegionDecoder(src ByteSource, p *RegionPlan, r int) (*Decoder, error) {
	if r < 0 || r >= len(p.regions) {
		return nil, fmt.Errorf("skipindex: region %d out of range (plan has %d)", r, len(p.regions))
	}
	root := &openElement{
		name:     p.rootName,
		descIDs:  p.rootDescIDs,
		size:     p.rootSize,
		endOff:   p.rootEndOff,
		depth:    1,
		descTags: p.rootDescTags,
	}
	d := &Decoder{
		src:        src,
		dict:       p.dict,
		off:        p.regions[r].Start,
		bytesTotal: p.bytesTotal,
		limit:      p.regions[r].End,
		lastOpened: root,
	}
	d.stack = []*openElement{
		{
			descIDs: allIDs(len(p.dict)),
			size:    p.bodySize,
			endOff:  p.bytesTotal,
			depth:   0,
		},
		root,
	}
	return d, nil
}
