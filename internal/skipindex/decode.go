package skipindex

import (
	"errors"
	"fmt"
	"io"

	"xmlac/internal/trace"
	"xmlac/internal/xmlstream"
)

// ByteSource abstracts random access to the encoded document. The plain
// in-memory implementation is bytesSource; internal/secure provides an
// implementation that fetches, decrypts and integrity-checks ciphertext on
// demand while counting the bytes that enter the SOE.
type ByteSource interface {
	io.ReaderAt
	// Size returns the total size of the encoded document.
	Size() int64
}

// bytesSource adapts a byte slice.
type bytesSource []byte

func (b bytesSource) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (b bytesSource) Size() int64 { return int64(len(b)) }

// NewBytesSource wraps an in-memory encoded document.
func NewBytesSource(data []byte) ByteSource { return bytesSource(data) }

// openElement is the decoder's per-open-element state (the paper's
// SkipStack): everything needed to decode the children of the element and to
// know where its encoding ends.
type openElement struct {
	name     string
	descIDs  []int // descendant tag ids (parent context for the children)
	size     uint64
	endOff   int64
	depth    int
	descTags map[string]struct{}
}

// Decoder streams a Skip-index encoded document as SAX-like events. It
// implements xmlstream.EventReader, xmlstream.Skipper (constant-time subtree
// skips driven by SubtreeSize) and the evaluator's MetaProvider interface
// (descendant-tag sets driving rule filtering).
type Decoder struct {
	src  ByteSource
	dict []string

	off     int64
	stack   []*openElement
	pending []xmlstream.Event

	// last opened element metadata, exposed through CurrentDescendantTags.
	lastOpened *openElement

	// bytesRead counts the bytes actually fetched from the source (skipped
	// bytes excluded); the SOE cost model charges communication and
	// decryption on this amount.
	bytesRead   int64
	bytesTotal  int64
	skippedByte int64

	// trace, when non-nil, charges decode and skip time to the evaluation's
	// phase timers.
	trace *trace.Context

	// limit, when positive, is the end offset of a region scan: the decoder
	// reports end-of-document as soon as the position reaches it with only
	// the root element still open, instead of decoding the root's remaining
	// children. Zero means no limit (whole-document scan). Region decoders
	// are built by NewRegionDecoder.
	limit int64

	err error
}

// SetTrace attaches (or detaches, with nil) the tracing context that decode
// and skip time is charged to. The header parse in NewDecoder runs before
// any context can be attached and stays unattributed.
func (d *Decoder) SetTrace(t *trace.Context) { d.trace = t }

// NewDecoder parses the header and returns a Decoder positioned on the root
// element.
func NewDecoder(src ByteSource) (*Decoder, error) {
	d := &Decoder{src: src, bytesTotal: src.Size()}
	header := make([]byte, 4)
	if err := d.readFull(header, 0); err != nil {
		// Keep the cause in the chain: a remote source's "document changed"
		// error must stay recognizable through errors.Is for the re-sync
		// retry above this pipeline.
		return nil, fmt.Errorf("%w: short header: %w", ErrBadFormat, err)
	}
	for i := range magic {
		if header[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
		}
	}
	off := int64(4)
	nt, err := d.readUvarint(&off)
	if err != nil {
		return nil, err
	}
	if nt == 0 || nt > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dictionary size %d", ErrBadFormat, nt)
	}
	d.dict = make([]string, nt)
	for i := range d.dict {
		l, err := d.readUvarint(&off)
		if err != nil {
			return nil, err
		}
		if l > 4096 {
			return nil, fmt.Errorf("%w: implausible tag length %d", ErrBadFormat, l)
		}
		buf := make([]byte, l)
		if err := d.readFull(buf, off); err != nil {
			return nil, err
		}
		off += int64(l)
		d.dict[i] = string(buf)
	}
	bodyLen, err := d.readUvarint(&off)
	if err != nil {
		return nil, err
	}
	if int64(bodyLen) != d.bytesTotal-off {
		return nil, fmt.Errorf("%w: body length %d does not match source size %d", ErrBadFormat, bodyLen, d.bytesTotal-off)
	}
	d.off = off
	// Virtual super-root context: full dictionary, body length.
	d.stack = []*openElement{{
		name:    "",
		descIDs: allIDs(len(d.dict)),
		size:    bodyLen,
		endOff:  d.bytesTotal,
		depth:   0,
	}}
	return d, nil
}

// Dictionary returns the tag dictionary of the document.
func (d *Decoder) Dictionary() []string { return append([]string(nil), d.dict...) }

// BytesRead returns the number of encoded bytes fetched from the source so
// far (header included, skipped ranges excluded).
func (d *Decoder) BytesRead() int64 { return d.bytesRead }

// BytesSkipped returns the number of encoded bytes jumped over by
// SkipToClose calls.
func (d *Decoder) BytesSkipped() int64 { return d.skippedByte }

// CurrentDescendantTags implements the evaluator's MetaProvider: the tag set
// of the subtree rooted at the most recently opened element.
func (d *Decoder) CurrentDescendantTags() (map[string]struct{}, bool) {
	if d.lastOpened == nil {
		return nil, false
	}
	return d.lastOpened.descTags, true
}

// Next implements xmlstream.EventReader.
func (d *Decoder) Next() (xmlstream.Event, error) {
	if d.err != nil {
		return xmlstream.Event{}, d.err
	}
	d.trace.Begin(trace.PhaseDecode)
	defer d.trace.End()
	for {
		if len(d.pending) > 0 {
			ev := d.pending[0]
			d.pending = d.pending[1:]
			return ev, nil
		}
		if err := d.advance(); err != nil {
			d.err = err
			return xmlstream.Event{}, err
		}
	}
}

// advance decodes the next construct and queues its events.
func (d *Decoder) advance() error {
	// A region decoder ends where its region does: once the position reaches
	// the limit with only the root open, the remaining children belong to
	// later regions. Checked before the close loop so the root element is
	// never popped — its Close event is owned by the caller that stitched
	// the regions together, not by any single region.
	if d.limit > 0 && len(d.stack) == 2 && d.off >= d.limit {
		return xmlstream.ErrEndOfDocument
	}
	// Close every element whose encoding is exhausted.
	for len(d.stack) > 1 {
		top := d.stack[len(d.stack)-1]
		if d.off < top.endOff {
			break
		}
		if d.off > top.endOff {
			return fmt.Errorf("%w: element <%s> overran its subtree size", ErrBadFormat, top.name)
		}
		d.stack = d.stack[:len(d.stack)-1]
		d.pending = append(d.pending, xmlstream.Event{Kind: xmlstream.Close, Name: top.name, Depth: top.depth})
		return nil
	}
	if len(d.stack) == 1 {
		if d.off >= d.bytesTotal {
			return xmlstream.ErrEndOfDocument
		}
	}
	return d.decodeElement()
}

// decodeElement decodes one element header (and its direct text) and queues
// the Open and Text events.
func (d *Decoder) decodeElement() error {
	parent := d.stack[len(d.stack)-1]
	start := d.off

	metaWidthBits := 1 + int(bitsForCount(len(parent.descIDs))) + int(bitsFor(parent.size))
	// The TagArray is only present for internal elements, but its presence
	// is known from the first bit; read the maximum meta size then re-parse.
	maxMetaBytes := (metaWidthBits + len(parent.descIDs) + 7) / 8
	buf := make([]byte, maxMetaBytes)
	n, err := d.src.ReadAt(buf, start)
	if n < len(buf) && err != nil && err != io.EOF {
		return fmt.Errorf("%w: reading element meta: %w", ErrBadFormat, err)
	}
	buf = buf[:n]
	r := newBitReader(buf)
	isLeaf, ok := r.readBool()
	if !ok {
		return fmt.Errorf("%w: truncated element meta", ErrBadFormat)
	}
	tagIdx, ok := r.readBits(bitsForCount(len(parent.descIDs)))
	if !ok {
		return fmt.Errorf("%w: truncated tag index", ErrBadFormat)
	}
	if int(tagIdx) >= len(parent.descIDs) {
		return fmt.Errorf("%w: tag index %d out of range", ErrBadFormat, tagIdx)
	}
	tagID := parent.descIDs[tagIdx]
	size, ok := r.readBits(bitsFor(parent.size))
	if !ok {
		return fmt.Errorf("%w: truncated subtree size", ErrBadFormat)
	}
	if size > parent.size {
		return fmt.Errorf("%w: subtree size %d exceeds parent size %d", ErrBadFormat, size, parent.size)
	}
	var descIDs []int
	if !isLeaf {
		for i := range parent.descIDs {
			present, ok := r.readBool()
			if !ok {
				return fmt.Errorf("%w: truncated tag array", ErrBadFormat)
			}
			if present {
				descIDs = append(descIDs, parent.descIDs[i])
			}
		}
	} else {
		descIDs = []int{tagID}
	}
	r.align()
	metaBytes := r.bytesConsumed()
	d.bytesRead += int64(metaBytes)
	off := start + int64(metaBytes)

	textLen, err := d.readUvarint(&off)
	if err != nil {
		return err
	}
	if int64(textLen) > d.bytesTotal-off {
		return fmt.Errorf("%w: text length %d overruns document", ErrBadFormat, textLen)
	}
	var text string
	if textLen > 0 {
		tb := make([]byte, textLen)
		if err := d.readFull(tb, off); err != nil {
			return err
		}
		off += int64(textLen)
		text = string(tb)
	}

	depth := len(d.stack) // virtual super-root occupies index 0
	el := &openElement{
		name:    d.dict[tagID],
		descIDs: descIDs,
		size:    size,
		endOff:  start + int64(size),
		depth:   depth,
	}
	el.descTags = make(map[string]struct{}, len(descIDs))
	for _, id := range descIDs {
		el.descTags[d.dict[id]] = struct{}{}
	}
	if el.endOff > d.bytesTotal {
		return fmt.Errorf("%w: element <%s> extends past end of document", ErrBadFormat, el.name)
	}
	d.stack = append(d.stack, el)
	d.lastOpened = el
	d.off = off

	d.pending = append(d.pending, xmlstream.Event{Kind: xmlstream.Open, Name: el.name, Depth: depth})
	if text != "" {
		d.pending = append(d.pending, xmlstream.Event{Kind: xmlstream.Text, Value: text, Depth: depth})
	}
	return nil
}

// SkipDistance reports how many encoded bytes a SkipToClose at the given
// depth would jump over, without performing the jump. A multicast scan
// (core.MultiEvaluator) uses it to charge each subject the bytes its solo
// evaluation would have skipped even when other subjects still need the
// subtree, so per-subject skip accounting matches the solo path exactly.
func (d *Decoder) SkipDistance(depth int) (int64, error) {
	for i := len(d.stack) - 1; i >= 1; i-- {
		if d.stack[i].depth == depth {
			if skipped := d.stack[i].endOff - d.off; skipped > 0 {
				return skipped, nil
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("%w: no open element at depth %d", ErrBadFormat, depth)
}

// SkipToClose implements xmlstream.Skipper: it jumps to the end of the
// encoding of the element open at the given depth without reading the bytes
// in between. The Close event of that element is produced by the next call
// to Next.
func (d *Decoder) SkipToClose(depth int) (int64, error) {
	d.trace.Begin(trace.PhaseSkip)
	defer d.trace.End()
	// Find the element at that depth in the open stack.
	var target *openElement
	idx := -1
	for i := len(d.stack) - 1; i >= 1; i-- {
		if d.stack[i].depth == depth {
			target = d.stack[i]
			idx = i
			break
		}
	}
	if target == nil {
		return 0, fmt.Errorf("%w: no open element at depth %d", ErrBadFormat, depth)
	}
	skipped := target.endOff - d.off
	if skipped < 0 {
		skipped = 0
	}
	d.off = target.endOff
	d.skippedByte += skipped
	// Events already decoded but not yet delivered all belong to the skipped
	// subtree: drop them. Elements below the target that the consumer has
	// already opened still need their Close events, in innermost-first
	// order, before the target's own Close.
	d.pending = d.pending[:0]
	for i := len(d.stack) - 1; i > idx; i-- {
		d.pending = append(d.pending, xmlstream.Event{Kind: xmlstream.Close, Name: d.stack[i].name, Depth: d.stack[i].depth})
	}
	d.stack = d.stack[:idx+1]
	return skipped, nil
}

// readFull reads len(p) bytes at offset off, counting them as fetched.
func (d *Decoder) readFull(p []byte, off int64) error {
	n, err := d.src.ReadAt(p, off)
	if n == len(p) {
		d.bytesRead += int64(n)
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: short read at offset %d: %w", ErrBadFormat, off, err)
}

// readUvarint reads a varint at *off, advancing it and counting the bytes.
func (d *Decoder) readUvarint(off *int64) (uint64, error) {
	buf := make([]byte, 10)
	n, _ := d.src.ReadAt(buf, *off)
	v, consumed := uvarint(buf[:n])
	if consumed == 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrBadFormat, *off)
	}
	*off += int64(consumed)
	d.bytesRead += int64(consumed)
	return v, nil
}

// Decode fully decodes an encoded document back into a tree (publisher-side
// utility and test helper; the SOE never materializes the document).
func Decode(data []byte) (*xmlstream.Node, error) {
	dec, err := NewDecoder(NewBytesSource(data))
	if err != nil {
		return nil, err
	}
	builder := xmlstream.NewTreeBuilder()
	for {
		ev, err := dec.Next()
		if errors.Is(err, xmlstream.ErrEndOfDocument) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := builder.WriteEvent(ev); err != nil {
			return nil, err
		}
	}
	return builder.Root()
}
