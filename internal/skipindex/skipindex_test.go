package skipindex

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"xmlac/internal/xmlstream"
)

func sampleDoc() *xmlstream.Node {
	return xmlstream.NewElement("Hospital",
		xmlstream.NewElement("Folder",
			xmlstream.NewElement("Admin",
				xmlstream.Elem("Fname", "alice"),
				xmlstream.Elem("Age", "52"),
			),
			xmlstream.NewElement("MedActs",
				xmlstream.NewElement("Act",
					xmlstream.Elem("RPhys", "DrA"),
					xmlstream.NewElement("Details", xmlstream.Elem("Diagnostic", "flu")),
				),
			),
		),
		xmlstream.NewElement("Folder",
			xmlstream.NewElement("Admin",
				xmlstream.Elem("Fname", "bob"),
				xmlstream.Elem("Age", "31"),
			),
		),
	)
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &bitWriter{}
	w.writeBool(true)
	w.writeBits(5, 3)
	w.writeBits(0x1234, 16)
	w.writeBool(false)
	w.writeBits(7, 3)
	data := w.bytes()
	r := newBitReader(data)
	if b, _ := r.readBool(); !b {
		t.Fatal("bool 1")
	}
	if v, _ := r.readBits(3); v != 5 {
		t.Fatalf("got %d want 5", v)
	}
	if v, _ := r.readBits(16); v != 0x1234 {
		t.Fatalf("got %x want 1234", v)
	}
	if b, _ := r.readBool(); b {
		t.Fatal("bool 2")
	}
	if v, _ := r.readBits(3); v != 7 {
		t.Fatalf("got %d want 7", v)
	}
	if _, ok := r.readBits(64); ok {
		t.Fatal("reading past end must fail")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]uint{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1023: 10}
	for in, want := range cases {
		if got := bitsFor(in); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", in, got, want)
		}
	}
	if bitsForCount(1) != 0 || bitsForCount(2) != 1 || bitsForCount(3) != 2 || bitsForCount(20) != 5 {
		t.Fatal("bitsForCount incorrect")
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		buf := putUvarint(nil, v)
		got, n := uvarint(buf)
		return got == v && n == len(buf) && n == uvarintLen(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, n := uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Fatal("truncated varint must be rejected")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	doc := sampleDoc()
	enc, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Dictionary) != len(doc.DistinctTags()) {
		t.Fatalf("dictionary size %d", len(enc.Dictionary))
	}
	back, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(doc) {
		t.Fatalf("round trip mismatch:\nin:  %s\nout: %s",
			xmlstream.SerializeTree(doc, false), xmlstream.SerializeTree(back, false))
	}
}

func TestEncodeRejectsNonElementRoot(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil root must fail")
	}
	if _, err := Encode(xmlstream.NewText("x")); err == nil {
		t.Fatal("text root must fail")
	}
}

func TestDecoderEventsAndDepths(t *testing.T) {
	doc := xmlstream.NewElement("a", xmlstream.Elem("b", "1"), xmlstream.NewElement("c", xmlstream.Elem("d", "2")))
	enc, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(NewBytesSource(enc.Data))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		ev, err := dec.Next()
		if err == xmlstream.ErrEndOfDocument {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev.String())
	}
	want := []string{
		"<a>@1", "<b>@2", `"1"@2`, "</b>@2", "<c>@2", "<d>@3", `"2"@3`, "</d>@3", "</c>@2", "</a>@1",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("event stream mismatch:\ngot:  %v\nwant: %v", got, want)
	}
}

func TestDecoderDescendantTags(t *testing.T) {
	doc := sampleDoc()
	enc, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(NewBytesSource(enc.Data))
	if err != nil {
		t.Fatal(err)
	}
	// Read until the first MedActs open event; its descendant tags must
	// contain Act/RPhys/Details/Diagnostic and not Admin.
	for {
		ev, err := dec.Next()
		if err != nil {
			t.Fatal("MedActs not found")
		}
		if ev.Kind == xmlstream.Open && ev.Name == "MedActs" {
			break
		}
	}
	tags, ok := dec.CurrentDescendantTags()
	if !ok {
		t.Fatal("descendant tags unavailable")
	}
	for _, want := range []string{"MedActs", "Act", "RPhys", "Details", "Diagnostic"} {
		if _, present := tags[want]; !present {
			t.Errorf("missing descendant tag %s", want)
		}
	}
	if _, present := tags["Admin"]; present {
		t.Error("Admin must not be reported under MedActs")
	}
}

func TestDecoderSkipToClose(t *testing.T) {
	doc := sampleDoc()
	enc, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(NewBytesSource(enc.Data))
	if err != nil {
		t.Fatal(err)
	}
	// Open Hospital, open first Folder, then skip the folder.
	for i := 0; i < 2; i++ {
		if _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
	skipped, err := dec.SkipToClose(2)
	if err != nil {
		t.Fatal(err)
	}
	if skipped <= 0 {
		t.Fatal("expected a positive skip")
	}
	ev, err := dec.Next()
	if err != nil || ev.Kind != xmlstream.Close || ev.Name != "Folder" || ev.Depth != 2 {
		t.Fatalf("expected </Folder>@2 after skip, got %v (%v)", ev, err)
	}
	ev, err = dec.Next()
	if err != nil || ev.Kind != xmlstream.Open || ev.Name != "Folder" {
		t.Fatalf("expected second <Folder>, got %v (%v)", ev, err)
	}
	// The skipped bytes are not fetched from the source.
	if dec.BytesSkipped() != skipped {
		t.Fatalf("BytesSkipped = %d want %d", dec.BytesSkipped(), skipped)
	}
	if dec.BytesRead() >= int64(len(enc.Data)) {
		t.Fatalf("skipping should reduce the bytes read (%d of %d)", dec.BytesRead(), len(enc.Data))
	}
	if _, err := dec.SkipToClose(99); err == nil {
		t.Fatal("skipping a non-open depth must fail")
	}
}

func TestDecoderReadsEveryByteWithoutSkips(t *testing.T) {
	doc := sampleDoc()
	enc, _ := Encode(doc)
	dec, err := NewDecoder(NewBytesSource(enc.Data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := dec.Next(); err != nil {
			break
		}
	}
	if dec.BytesRead() != int64(len(enc.Data)) {
		t.Fatalf("full scan should read every byte: read %d of %d", dec.BytesRead(), len(enc.Data))
	}
}

func TestDecoderRejectsCorruptedInput(t *testing.T) {
	doc := sampleDoc()
	enc, _ := Encode(doc)
	// Bad magic.
	bad := append([]byte{}, enc.Data...)
	bad[0] = 'Z'
	if _, err := NewDecoder(NewBytesSource(bad)); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Truncated document.
	if _, err := NewDecoder(NewBytesSource(enc.Data[:8])); err == nil {
		t.Fatal("truncated header must be rejected")
	}
	trunc := enc.Data[:len(enc.Data)-5]
	if _, err := NewDecoder(NewBytesSource(trunc)); err == nil {
		// Header parses but body length check must fail.
		t.Fatal("truncated body must be rejected")
	}
}

func TestVariantsOrdering(t *testing.T) {
	doc := sampleDoc()
	reports := MeasureAll(doc)
	if len(reports) != 5 {
		t.Fatalf("expected 5 reports, got %d", len(reports))
	}
	byVariant := map[Variant]SizeReport{}
	for _, r := range reports {
		byVariant[r.Variant] = r
	}
	// The qualitative ordering of Figure 8: NC is by far the largest
	// structure; TC is much smaller; TCS adds overhead over TC; TCSB adds
	// more; TCSBR compresses TCSB back near TC.
	if byVariant[NC].StructureBytes <= byVariant[TC].StructureBytes {
		t.Error("NC must be larger than TC")
	}
	if byVariant[TCS].StructureBytes < byVariant[TC].StructureBytes {
		t.Error("TCS cannot be smaller than TC")
	}
	if byVariant[TCSB].StructureBytes < byVariant[TCS].StructureBytes {
		t.Error("TCSB cannot be smaller than TCS")
	}
	if byVariant[TCSBR].StructureBytes >= byVariant[TCSB].StructureBytes {
		t.Error("the recursive encoding must be smaller than TCSB")
	}
	for _, r := range reports {
		if r.TextBytes != int64(doc.TextLength()) {
			t.Errorf("%s: text bytes %d", r.Variant, r.TextBytes)
		}
		if r.StructureOverText <= 0 {
			t.Errorf("%s: ratio must be positive", r.Variant)
		}
	}
	if NC.String() != "NC" || TCSBR.String() != "TCSBR" || Variant(99).String() != "unknown" {
		t.Error("Variant.String incorrect")
	}
}

// TestPropertyEncodeDecodeRandomTrees: random trees round-trip through the
// Skip-index encoding.
func TestPropertyEncodeDecodeRandomTrees(t *testing.T) {
	f := func(seed uint32) bool {
		doc := randomTree(int(seed))
		enc, err := Encode(doc)
		if err != nil {
			return false
		}
		back, err := Decode(enc.Data)
		if err != nil {
			return false
		}
		return back.Equal(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySkipNeverChangesSubsequentEvents: skipping a subtree yields
// exactly the same remaining events as reading through it.
func TestPropertySkipNeverChangesSubsequentEvents(t *testing.T) {
	f := func(seed uint32) bool {
		doc := randomTree(int(seed))
		enc, err := Encode(doc)
		if err != nil {
			return false
		}
		full, err := NewDecoder(NewBytesSource(enc.Data))
		if err != nil {
			return false
		}
		skip, err := NewDecoder(NewBytesSource(enc.Data))
		if err != nil {
			return false
		}
		// Read two events on both, then skip the current element on one and
		// fast-forward the other manually.
		var skipDepth int
		for i := 0; i < 2; i++ {
			ev, err := full.Next()
			if err != nil {
				return true // tiny document, nothing to compare
			}
			ev2, err2 := skip.Next()
			if err2 != nil || ev != ev2 {
				return false
			}
			if ev.Kind == xmlstream.Open {
				skipDepth = ev.Depth
			}
		}
		if skipDepth == 0 {
			return true
		}
		if _, err := skip.SkipToClose(skipDepth); err != nil {
			return false
		}
		// Fast-forward the full reader to the matching close.
		for {
			ev, err := full.Next()
			if err != nil {
				return false
			}
			if ev.Kind == xmlstream.Close && ev.Depth == skipDepth {
				// push back: compare the next events from here on.
				break
			}
		}
		evSkip, errSkip := skip.Next()
		if errSkip != nil || evSkip.Kind != xmlstream.Close || evSkip.Depth != skipDepth {
			return false
		}
		for {
			a, errA := full.Next()
			b, errB := skip.Next()
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA != nil {
				return true
			}
			if a != b {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// randomTree builds a deterministic random tree with text at the leaves.
func randomTree(seed int) *xmlstream.Node {
	state := uint32(seed*2654435761 + 7)
	next := func(n int) int {
		state = state*1664525 + 1013904223
		return int(state>>16) % n
	}
	tags := []string{"alpha", "beta", "gamma", "delta", "eps"}
	var build func(depth int) *xmlstream.Node
	build = func(depth int) *xmlstream.Node {
		n := xmlstream.NewElement(tags[next(len(tags))])
		if depth >= 4 || next(3) == 0 {
			n.Append(xmlstream.NewText("v" + tags[next(len(tags))]))
			return n
		}
		kids := next(4) + 1
		for i := 0; i < kids; i++ {
			n.Append(build(depth + 1))
		}
		return n
	}
	return build(1)
}

// TestEncodeIndexedSpliceEqualsReencode pins the property the in-place
// update fast path relies on: replacing an element's direct text with a
// same-length value by splicing Data at its TextSpan produces exactly the
// bytes a full re-encode of the edited tree produces.
func TestEncodeIndexedSpliceEqualsReencode(t *testing.T) {
	root := xmlstream.NewElement("Folder",
		xmlstream.NewElement("Admin",
			xmlstream.Elem("Phone", "0123456789"),
			xmlstream.Elem("Age", "42"),
		),
		xmlstream.NewElement("Act",
			xmlstream.NewText("preamble "),
			xmlstream.Elem("Id", "ACT0000001"),
			xmlstream.NewText(" tail"),
		),
	)
	enc, err := EncodeIndexed(root)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Encode(root)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TextSpans != nil {
		t.Fatal("plain Encode must not build the span index")
	}
	if !bytes.Equal(enc.Data, plain.Data) {
		t.Fatal("EncodeIndexed must not change the encoding")
	}
	// Every element's span must read back its concatenated direct text.
	root.Walk(func(n *xmlstream.Node) bool {
		if n.Kind != xmlstream.ElementNode {
			return true
		}
		span, ok := enc.TextSpans[n]
		if !ok {
			t.Fatalf("no span for <%s>", n.Name)
		}
		if got := string(enc.Data[span.Off : span.Off+span.Len]); got != n.Text() {
			t.Fatalf("<%s> span reads %q, tree says %q", n.Name, got, n.Text())
		}
		return true
	})
	// Splice a same-length phone number and compare with re-encoding the
	// edited tree.
	phone := root.Children[0].Children[0]
	span := enc.TextSpans[phone]
	spliced := append([]byte(nil), enc.Data...)
	copy(spliced[span.Off:span.Off+span.Len], "9876543210")
	phone.Children = []*xmlstream.Node{xmlstream.NewText("9876543210")}
	reenc, err := Encode(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spliced, reenc.Data) {
		t.Fatal("spliced encoding differs from a full re-encode of the edited tree")
	}
	// The multi-text element's span covers the concatenation.
	act := root.Children[1]
	aspan := enc.TextSpans[act]
	if string(enc.Data[aspan.Off:aspan.Off+aspan.Len]) != "preamble  tail" {
		t.Fatalf("concatenated span reads %q", string(enc.Data[aspan.Off:aspan.Off+aspan.Len]))
	}
}
