package skipindex

import (
	"errors"
	"testing"
	"testing/quick"

	"xmlac/internal/xmlstream"
)

// serialEvents fully decodes an encoded document into its event stream.
func serialEvents(t *testing.T, data []byte) []xmlstream.Event {
	t.Helper()
	dec, err := NewDecoder(NewBytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	var evs []xmlstream.Event
	for {
		ev, err := dec.Next()
		if errors.Is(err, xmlstream.ErrEndOfDocument) {
			return evs
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
}

// stitchedEvents replays the plan prefix, then every region in order, then
// the root Close — the exact reassembly protocol of the parallel scan.
func stitchedEvents(t *testing.T, data []byte, plan *RegionPlan) []xmlstream.Event {
	t.Helper()
	evs := plan.Prefix()
	for r := 0; r < plan.RegionCount(); r++ {
		dec, err := NewRegionDecoder(NewBytesSource(data), plan, r)
		if err != nil {
			t.Fatal(err)
		}
		for {
			ev, err := dec.Next()
			if errors.Is(err, xmlstream.ErrEndOfDocument) {
				break
			}
			if err != nil {
				t.Fatalf("region %d: %v", r, err)
			}
			if ev.Kind == xmlstream.Close && ev.Depth == 1 {
				t.Fatalf("region %d emitted the root Close", r)
			}
			evs = append(evs, ev)
		}
	}
	return append(evs, xmlstream.Event{Kind: xmlstream.Close, Name: plan.RootName(), Depth: 1})
}

func eventsEqual(a, b []xmlstream.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanRegionsPartition(t *testing.T) {
	enc, err := Encode(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanRegions(NewBytesSource(enc.Data), 4)
	if err != nil {
		t.Fatal(err)
	}
	// sampleDoc has two root children, so at most two regions exist.
	if plan.RegionCount() != 2 {
		t.Fatalf("RegionCount = %d, want 2", plan.RegionCount())
	}
	regions := plan.Regions()
	if regions[0].End != regions[1].Start {
		t.Fatalf("regions must tile: %+v", regions)
	}
	if regions[0].FirstChild != 0 || regions[1].FirstChild != 1 ||
		regions[0].NumChildren != 1 || regions[1].NumChildren != 1 {
		t.Fatalf("child assignment wrong: %+v", regions)
	}
	if got := plan.RootSkipDistance(); got != regions[1].End-regions[0].Start {
		t.Fatalf("RootSkipDistance = %d, want %d", got, regions[1].End-regions[0].Start)
	}
	if plan.RootName() != "Hospital" {
		t.Fatalf("RootName = %q", plan.RootName())
	}
	if _, ok := plan.RootDescendantTags()["Diagnostic"]; !ok {
		t.Fatal("root descendant tags must include Diagnostic")
	}
	prefix := plan.Prefix()
	if len(prefix) != 1 || prefix[0].Kind != xmlstream.Open || prefix[0].Name != "Hospital" {
		t.Fatalf("prefix = %v", prefix)
	}
}

func TestPlanRegionsCapsAtMaxRegions(t *testing.T) {
	var kids []*xmlstream.Node
	for i := 0; i < 17; i++ {
		kids = append(kids, xmlstream.NewElement("Folder", xmlstream.Elem("Age", "31")))
	}
	enc, err := Encode(xmlstream.NewElement("Hospital", kids...))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanRegions(NewBytesSource(enc.Data), 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.RegionCount() != 4 {
		t.Fatalf("RegionCount = %d, want 4", plan.RegionCount())
	}
	total := 0
	for _, r := range plan.Regions() {
		total += r.NumChildren
		if r.NumChildren == 0 {
			t.Fatalf("empty region: %+v", r)
		}
	}
	if total != 17 {
		t.Fatalf("regions cover %d children, want 17", total)
	}
}

func TestPlanRegionsNotDecomposable(t *testing.T) {
	for _, doc := range []*xmlstream.Node{
		xmlstream.Elem("leaf", "text-only root"),
		xmlstream.NewElement("empty"),
	} {
		enc, err := Encode(doc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := PlanRegions(NewBytesSource(enc.Data), 8); !errors.Is(err, ErrNotDecomposable) {
			t.Fatalf("<%s>: err = %v, want ErrNotDecomposable", doc.Name, err)
		}
	}
}

// TestRegionDecoderStitchMatchesSerial: prefix + regions in order + root
// Close reproduces the serial event stream exactly.
func TestRegionDecoderStitchMatchesSerial(t *testing.T) {
	doc := sampleDoc()
	// Give the root direct text too, so the prefix carries a Text event.
	doc.Children = append([]*xmlstream.Node{xmlstream.NewText("hdr")}, doc.Children...)
	enc, err := Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialEvents(t, enc.Data)
	for _, maxRegions := range []int{1, 2, 3, 8} {
		plan, err := PlanRegions(NewBytesSource(enc.Data), maxRegions)
		if err != nil {
			t.Fatal(err)
		}
		if got := stitchedEvents(t, enc.Data, plan); !eventsEqual(got, serial) {
			t.Fatalf("maxRegions=%d: stitched stream differs\ngot:  %v\nwant: %v", maxRegions, got, serial)
		}
	}
}

// TestRegionDecoderMetaAndSkip: a region decoder answers MetaProvider for
// the root before its first event, and an in-region SkipToClose behaves as
// on the serial path.
func TestRegionDecoderMetaAndSkip(t *testing.T) {
	enc, err := Encode(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanRegions(NewBytesSource(enc.Data), 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRegionDecoder(NewBytesSource(enc.Data), plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	tags, ok := dec.CurrentDescendantTags()
	if !ok {
		t.Fatal("region decoder must answer for the root before its first event")
	}
	if _, present := tags["MedActs"]; !present {
		t.Fatal("root descendant tags must include MedActs")
	}
	// Open the first Folder, then skip it: next events are its Close and
	// then end-of-region (region 0 holds exactly one child).
	ev, err := dec.Next()
	if err != nil || ev.Kind != xmlstream.Open || ev.Name != "Folder" || ev.Depth != 2 {
		t.Fatalf("first region event = %v (%v)", ev, err)
	}
	skipped, err := dec.SkipToClose(2)
	if err != nil || skipped <= 0 {
		t.Fatalf("SkipToClose: %d, %v", skipped, err)
	}
	ev, err = dec.Next()
	if err != nil || ev.Kind != xmlstream.Close || ev.Name != "Folder" {
		t.Fatalf("after skip: %v (%v)", ev, err)
	}
	if _, err := dec.Next(); !errors.Is(err, xmlstream.ErrEndOfDocument) {
		t.Fatalf("region must end after its last child, got %v", err)
	}
	if dec.BytesSkipped() != skipped {
		t.Fatalf("BytesSkipped = %d want %d", dec.BytesSkipped(), skipped)
	}
	if _, err := NewRegionDecoder(NewBytesSource(enc.Data), plan, 99); err == nil {
		t.Fatal("out-of-range region must fail")
	}
}

// TestPropertyRegionStitchRandomTrees: for random trees and region counts,
// the stitched stream equals the serial stream.
func TestPropertyRegionStitchRandomTrees(t *testing.T) {
	f := func(seed uint32, k uint8) bool {
		doc := randomTree(int(seed))
		enc, err := Encode(doc)
		if err != nil {
			return false
		}
		maxRegions := int(k)%7 + 1
		plan, err := PlanRegions(NewBytesSource(enc.Data), maxRegions)
		if errors.Is(err, ErrNotDecomposable) {
			return len(doc.Children) == 0 || doc.Children[0].Kind == xmlstream.TextNode
		}
		if err != nil {
			return false
		}
		return eventsEqual(stitchedEvents(t, enc.Data, plan), serialEvents(t, enc.Data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
