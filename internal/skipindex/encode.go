package skipindex

import (
	"errors"
	"fmt"
	"sort"

	"xmlac/internal/xmlstream"
)

// Format overview (TCSBR, the full Skip index of section 4.1):
//
//	header:
//	  magic "XSI1"
//	  uvarint  tag-dictionary size Nt
//	  Nt × (uvarint length + tag bytes)      -- sorted, tag id = position
//	  uvarint  body length in bytes
//	body: recursive element encoding, every element starting byte-aligned:
//	  bit      isLeaf (element has no element children)
//	  bits     tag index into the parent's descendant-tag list
//	           (ceil(log2(|DescTag_parent|)) bits; the document root uses
//	           the full dictionary as parent context)
//	  bits     SubtreeSize_e: the byte length of the complete encoding of e
//	           (ceil(log2(SubtreeSize_parent)) bits)
//	  bits     TagArray_e: |DescTag_parent| bits, one per parent descendant
//	           tag, set when that tag occurs in e's subtree (internal
//	           elements only; leaves carry no TagArray)
//	  padding to the next byte frontier
//	  uvarint  text length + text bytes (concatenated direct text of e)
//	  children encodings, in document order
//
// Closing tags are not stored: SubtreeSize delimits each element, exactly as
// the paper notes ("storing the SubtreeSize for each element makes closing
// tags unnecessary").

// magic identifies the encoding.
var magic = []byte("XSI1")

// ErrBadFormat wraps every decoding error.
var ErrBadFormat = errors.New("skipindex: malformed encoded document")

// Encoded is an encoded document plus the information the publisher-side
// tooling needs (dictionary, structural statistics).
type Encoded struct {
	// Data is the full encoded document (header + body).
	Data []byte
	// Dictionary is the sorted tag dictionary.
	Dictionary []string
	// BodyOffset is the offset of the body (root element) in Data.
	BodyOffset int
	// StructureBits is the number of metadata bits (leaf flags, tags,
	// subtree sizes, tag arrays) before byte alignment; used by the Figure 8
	// accounting.
	StructureBits int
	// TextBytes is the number of text bytes stored in the body.
	TextBytes int
	// TextSpans maps each element of the source tree to the byte range of
	// its direct text inside Data (EncodeIndexed only; nil for Encode). A
	// same-length replacement of an element's concatenated direct text can
	// be spliced into Data at its span without re-encoding: no subtree size,
	// field width, tag array or dictionary entry depends on text content —
	// only on its length. That splice is the in-place update fast path.
	TextSpans map[*xmlstream.Node]TextSpan
}

// TextSpan is the byte range [Off, Off+Len) of an element's direct text
// inside the encoded document.
type TextSpan struct {
	Off int
	Len int
}

// encNode is the per-element working state of the encoder.
type encNode struct {
	node     *xmlstream.Node
	children []*encNode
	descTags []int // sorted tag ids present in the subtree (including self)
	text     string
	isLeaf   bool
	// size is the encoded byte length of the subtree (meta+text+children),
	// recomputed at each fixpoint iteration.
	size uint64
	// metaBits of the last computation (diagnostics / Figure 8).
	metaBits int
}

// Encode builds the TCSBR encoding of a document tree.
func Encode(root *xmlstream.Node) (*Encoded, error) {
	return encode(root, false)
}

// EncodeIndexed is Encode plus the per-element text span index (TextSpans)
// the in-place update fast path needs. The index costs one map entry per
// element, so the plain Encode skips it.
func EncodeIndexed(root *xmlstream.Node) (*Encoded, error) {
	return encode(root, true)
}

func encode(root *xmlstream.Node, indexed bool) (*Encoded, error) {
	if root == nil || root.Kind != xmlstream.ElementNode {
		return nil, fmt.Errorf("%w: document root must be an element", ErrBadFormat)
	}
	// Tag dictionary.
	dict := root.DistinctTags()
	tagID := make(map[string]int, len(dict))
	for i, t := range dict {
		tagID[t] = i
	}

	// Build the encoder tree with descendant-tag sets.
	var build func(n *xmlstream.Node) *encNode
	build = func(n *xmlstream.Node) *encNode {
		en := &encNode{node: n, isLeaf: true}
		tagSet := map[int]struct{}{tagID[n.Name]: {}}
		text := ""
		for _, c := range n.Children {
			switch c.Kind {
			case xmlstream.TextNode:
				text += c.Value
			case xmlstream.ElementNode:
				en.isLeaf = false
				ce := build(c)
				en.children = append(en.children, ce)
				for _, id := range ce.descTags {
					tagSet[id] = struct{}{}
				}
			}
		}
		en.text = text
		en.descTags = make([]int, 0, len(tagSet))
		for id := range tagSet {
			en.descTags = append(en.descTags, id)
		}
		sort.Ints(en.descTags)
		return en
	}
	eroot := build(root)

	// Fixpoint on subtree sizes: the width of an element's SubtreeSize field
	// is ceil(log2(SubtreeSize_parent)) bits, so every size depends on its
	// parent's size which in turn depends on the children's encoded lengths.
	// Starting from a generous upper bound, sizes are recomputed bottom-up
	// (each pass using the previous pass's parent sizes for the field
	// widths) until they stop changing; widths and sizes are monotonically
	// non-increasing, so the iteration converges.
	var seed func(en *encNode)
	seed = func(en *encNode) {
		en.size = 1 << 40
		for _, c := range en.children {
			seed(c)
		}
	}
	seed(eroot)
	var recompute func(en *encNode, parentDesc []int, parentPrevSize uint64) uint64
	recompute = func(en *encNode, parentDesc []int, parentPrevSize uint64) uint64 {
		metaBits := 1 + int(bitsForCount(len(parentDesc))) + int(bitsFor(parentPrevSize))
		if !en.isLeaf {
			metaBits += len(parentDesc)
		}
		en.metaBits = metaBits
		size := uint64((metaBits + 7) / 8)
		size += uint64(uvarintLen(uint64(len(en.text)))) + uint64(len(en.text))
		prevOwn := en.size
		for _, c := range en.children {
			size += recompute(c, en.descTags, prevOwn)
		}
		en.size = size
		return size
	}
	const maxIterations = 64
	prevTotal := uint64(0)
	for i := 0; i < maxIterations; i++ {
		total := recompute(eroot, allIDs(len(dict)), eroot.size)
		if total == prevTotal {
			break
		}
		prevTotal = total
	}

	// Emit.
	var data []byte
	data = append(data, magic...)
	data = putUvarint(data, uint64(len(dict)))
	for _, t := range dict {
		data = putUvarint(data, uint64(len(t)))
		data = append(data, t...)
	}
	data = putUvarint(data, eroot.size)
	bodyOffset := len(data)

	enc := &Encoded{Dictionary: dict, BodyOffset: bodyOffset}
	if indexed {
		enc.TextSpans = make(map[*xmlstream.Node]TextSpan)
	}
	var emit func(en *encNode, parentDesc []int, parentSize uint64) error
	emit = func(en *encNode, parentDesc []int, parentSize uint64) error {
		w := &bitWriter{}
		w.writeBool(en.isLeaf)
		idx := indexOf(parentDesc, tagID[en.node.Name])
		if idx < 0 {
			return fmt.Errorf("%w: tag %q missing from parent context", ErrBadFormat, en.node.Name)
		}
		w.writeBits(uint64(idx), bitsForCount(len(parentDesc)))
		if en.size > parentSize {
			return fmt.Errorf("%w: subtree size %d exceeds parent size %d", ErrBadFormat, en.size, parentSize)
		}
		w.writeBits(en.size, bitsFor(parentSize))
		if !en.isLeaf {
			own := map[int]struct{}{}
			for _, id := range en.descTags {
				own[id] = struct{}{}
			}
			for _, id := range parentDesc {
				_, present := own[id]
				w.writeBool(present)
			}
		}
		enc.StructureBits += w.bitLen()
		meta := w.bytes()
		start := len(data)
		data = append(data, meta...)
		data = putUvarint(data, uint64(len(en.text)))
		if indexed {
			enc.TextSpans[en.node] = TextSpan{Off: len(data), Len: len(en.text)}
		}
		data = append(data, en.text...)
		enc.TextBytes += len(en.text)
		for _, c := range en.children {
			if err := emit(c, en.descTags, en.size); err != nil {
				return err
			}
		}
		if got := uint64(len(data) - start); got != en.size {
			return fmt.Errorf("%w: size mismatch for <%s>: computed %d, emitted %d", ErrBadFormat, en.node.Name, en.size, got)
		}
		return nil
	}
	if err := emit(eroot, allIDs(len(dict)), eroot.size); err != nil {
		return nil, err
	}
	enc.Data = data
	return enc, nil
}

// allIDs returns [0..n).
func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func indexOf(ids []int, id int) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}
