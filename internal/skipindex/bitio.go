// Package skipindex implements the Skip index of section 4 of the paper: a
// highly compact, recursively encoded structural index embedded in the XML
// document that lets the SOE (1) detect rules and queries that cannot apply
// inside a subtree (descendant-tag bitmaps), (2) skip entire subtrees in
// constant time (subtree sizes), and (3) compress the structural part of the
// document (dictionary tag encoding). The package also provides the
// comparison encodings NC, TC, TCS and TCSB used by Figure 8 to quantify the
// storage overhead of each piece of metadata.
//
// The same subtree-size metadata that powers constant-time skips also makes
// the scan decomposable: PlanRegions walks the root's direct children by
// extent alone (one small metadata read per child, no descent) and
// partitions them into byte-balanced regions, and NewRegionDecoder opens a
// Decoder mid-document at a region boundary with the root already on its
// open stack. A parallel scan runs one region decoder per worker over the
// same encoded bytes and stitches the event streams back together in
// document order; each region decoder stops at its region's end without
// ever emitting the root's Close event, which belongs to the stitcher.
//
// Decoders are single-goroutine; a RegionPlan is immutable and may be
// shared. The ByteSource behind a decoder must be goroutine-safe only if
// shared — parallel workers avoid the question by opening one source each.
package skipindex

// bitWriter packs bit fields most-significant-bit first into a byte slice.
// Every element's metadata is padded to a byte frontier (as required by the
// paper so that subtree skips land on byte offsets).
type bitWriter struct {
	buf  []byte
	cur  byte
	nbit uint // bits used in cur
}

// writeBits appends the width low-order bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		w.cur = w.cur<<1 | bit
		w.nbit++
		if w.nbit == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbit = 0, 0
		}
	}
}

// writeBool appends a single bit.
func (w *bitWriter) writeBool(b bool) {
	if b {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

// align pads the current byte with zero bits so the next write starts on a
// byte frontier.
func (w *bitWriter) align() {
	if w.nbit == 0 {
		return
	}
	w.cur <<= 8 - w.nbit
	w.buf = append(w.buf, w.cur)
	w.cur, w.nbit = 0, 0
}

// bytes returns the written bytes; the writer must be aligned.
func (w *bitWriter) bytes() []byte {
	w.align()
	return w.buf
}

// bitLen returns the number of bits written so far (before alignment).
func (w *bitWriter) bitLen() int { return len(w.buf)*8 + int(w.nbit) }

// bitReader reads bit fields written by bitWriter.
type bitReader struct {
	buf  []byte
	pos  int  // byte position
	nbit uint // bits consumed in buf[pos]
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

// readBits reads width bits, most significant first.
func (r *bitReader) readBits(width uint) (uint64, bool) {
	var v uint64
	for i := uint(0); i < width; i++ {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		bit := (r.buf[r.pos] >> (7 - r.nbit)) & 1
		v = v<<1 | uint64(bit)
		r.nbit++
		if r.nbit == 8 {
			r.nbit = 0
			r.pos++
		}
	}
	return v, true
}

// readBool reads one bit.
func (r *bitReader) readBool() (bool, bool) {
	v, ok := r.readBits(1)
	return v == 1, ok
}

// align skips to the next byte frontier.
func (r *bitReader) align() {
	if r.nbit != 0 {
		r.nbit = 0
		r.pos++
	}
}

// bytesConsumed returns the number of whole bytes consumed (reader must be
// aligned).
func (r *bitReader) bytesConsumed() int { return r.pos }

// bitsFor returns the number of bits needed to represent any value in
// [0, maxValue]; zero when maxValue is 0.
func bitsFor(maxValue uint64) uint {
	var n uint
	for maxValue > 0 {
		n++
		maxValue >>= 1
	}
	return n
}

// bitsForCount returns the number of bits needed to encode an index in
// [0, count); zero when count <= 1.
func bitsForCount(count int) uint {
	if count <= 1 {
		return 0
	}
	return bitsFor(uint64(count - 1))
}

// putUvarint appends a variable-length unsigned integer (7 bits per byte,
// little-endian groups, high bit = continuation) and returns the new slice.
func putUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// uvarint reads a variable-length unsigned integer and returns the value and
// the number of bytes consumed (0 when the buffer is malformed).
func uvarint(buf []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if i >= 10 {
			return 0, 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// uvarintLen returns the encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
