package skipindex

import (
	"xmlac/internal/xmlstream"
)

// Variant identifies one of the encoding schemes compared by Figure 8 of the
// paper. All variants share the same dictionary-based tag compression; they
// differ in which structural metadata they store.
type Variant int

const (
	// NC is the original non-compressed textual document.
	NC Variant = iota
	// TC compresses tags with the dictionary (log2(Nt) bits per tag, one
	// opening and one closing code per element).
	TC
	// TCS adds the subtree size (log2(compressed document size) bits per
	// element) which makes closing tags unnecessary and enables skipping.
	TCS
	// TCSB adds the bitmap of descendant tags (Nt bits per internal
	// element).
	TCSB
	// TCSBR is the recursive variant of TCSB — the actual Skip index: tag
	// indexes, subtree sizes and bitmaps are all encoded relative to the
	// parent's metadata.
	TCSBR
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case NC:
		return "NC"
	case TC:
		return "TC"
	case TCS:
		return "TCS"
	case TCSB:
		return "TCSB"
	case TCSBR:
		return "TCSBR"
	default:
		return "unknown"
	}
}

// Variants lists the five schemes in the order of Figure 8.
func Variants() []Variant { return []Variant{NC, TC, TCS, TCSB, TCSBR} }

// SizeReport is the storage accounting of one variant over one document.
type SizeReport struct {
	Variant Variant
	// StructureBytes is the size of the structural part (tags + metadata)
	// of the encoding.
	StructureBytes int64
	// TextBytes is the size of the text content (identical across
	// variants).
	TextBytes int64
	// TotalBytes is structure + text (+ fixed headers for TCSBR).
	TotalBytes int64
	// StructureOverText is the ratio plotted by Figure 8, in percent.
	StructureOverText float64
}

// MeasureVariant computes the storage report of one variant on a document.
// Structure sizes are computed at bit granularity (as in the paper) and
// reported in bytes.
func MeasureVariant(root *xmlstream.Node, v Variant) SizeReport {
	textBytes := int64(root.TextLength())
	elements := int64(root.CountElements())
	nt := len(root.DistinctTags())

	report := SizeReport{Variant: v, TextBytes: textBytes}
	switch v {
	case NC:
		total := int64(len(xmlstream.SerializeTree(root, false)))
		report.StructureBytes = total - textBytes
		report.TotalBytes = total
	case TC:
		// One opening and one closing code per element; codes must also
		// distinguish the "close" marker, hence Nt+1 symbols.
		bitsPerCode := int64(bitsFor(uint64(nt)))
		bits := elements * 2 * bitsPerCode
		report.StructureBytes = (bits + 7) / 8
		report.TotalBytes = report.StructureBytes + textBytes
	case TCS:
		report.StructureBytes = measureTCS(root, nt, false)
		report.TotalBytes = report.StructureBytes + textBytes
	case TCSB:
		report.StructureBytes = measureTCS(root, nt, true)
		report.TotalBytes = report.StructureBytes + textBytes
	case TCSBR:
		enc, err := Encode(root)
		if err != nil {
			// An encoding failure would be a programming error; report an
			// empty measurement rather than panicking in a measurement path.
			return report
		}
		report.StructureBytes = (int64(enc.StructureBits) + 7) / 8
		report.TotalBytes = int64(len(enc.Data))
	}
	if textBytes > 0 {
		report.StructureOverText = 100 * float64(report.StructureBytes) / float64(textBytes)
	}
	return report
}

// measureTCS computes the structural bit size of the TCS (and, with bitmaps,
// TCSB) encodings: per element a tag code of log2(Nt) bits and a subtree
// size of log2(compressed document size) bits, plus Nt bits of descendant
// bitmap per internal element for TCSB. The subtree-size width depends on
// the total compressed size, which is resolved with a two-pass computation.
func measureTCS(root *xmlstream.Node, nt int, withBitmap bool) int64 {
	elements := int64(root.CountElements())
	internal := int64(0)
	root.Walk(func(n *xmlstream.Node) bool {
		if n.Kind == xmlstream.ElementNode && !n.IsLeaf() {
			internal++
		}
		return true
	})
	tagBits := int64(bitsForCount(nt))
	textBytes := int64(root.TextLength())

	// First pass: assume 32-bit subtree sizes to estimate the compressed
	// total, then derive the real width from it.
	sizeBits := int64(32)
	for i := 0; i < 4; i++ {
		structBits := elements*(tagBits+sizeBits) + leafFlagBits(elements)
		if withBitmap {
			structBits += internal * int64(nt)
		}
		total := (structBits+7)/8 + textBytes
		newWidth := int64(bitsFor(uint64(total)))
		if newWidth == sizeBits {
			break
		}
		sizeBits = newWidth
	}
	structBits := elements*(tagBits+sizeBits) + leafFlagBits(elements)
	if withBitmap {
		structBits += internal * int64(nt)
	}
	return (structBits + 7) / 8
}

// leafFlagBits is the one-bit leaf/internal marker the paper adds to each
// node so leaves can omit the TagArray.
func leafFlagBits(elements int64) int64 { return elements }

// MeasureAll runs MeasureVariant for every variant.
func MeasureAll(root *xmlstream.Node) []SizeReport {
	out := make([]SizeReport, 0, 5)
	for _, v := range Variants() {
		out = append(out, MeasureVariant(root, v))
	}
	return out
}
