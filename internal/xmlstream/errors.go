package xmlstream

import "errors"

// ErrEndOfDocument is returned by EventReader.Next when the document is
// exhausted. It plays the role io.EOF plays for byte streams; a distinct
// error makes accidental propagation of a real io.EOF from the underlying
// transport detectable.
var ErrEndOfDocument = errors.New("xmlstream: end of document")

// ErrMalformed is wrapped by parser errors caused by malformed input.
var ErrMalformed = errors.New("xmlstream: malformed document")

// errUnclosedElements is raised by TreeSink.End when the delivery stream
// finished with open elements. The evaluator guarantees a balanced
// single-rooted stream, so it reaching a caller indicates a bug upstream.
var errUnclosedElements = errors.New("xmlstream: view stream ended with unclosed elements")
