package xmlstream

import (
	"strings"
	"testing"
)

// FuzzParser drives the hand-rolled streaming parser over arbitrary bytes.
// The parser feeds everything downstream of an untrusted document source, so
// it must never panic and must keep its event stream well-formed: events come
// out with balanced, stack-consistent depths, and a document it accepts
// round-trips through the serializer to the same event stream.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a></a>",
		"<a><b>text</b><c x=\"1\"/></a>",
		"<root><Folder><Admin><Age>71</Age></Admin></Folder></root>",
		"<a><!-- comment --><![CDATA[raw]]><?pi data?><b>&amp;&lt;&gt;</b></a>",
		"<a attr=\"v\" other='w'>mixed <b/> tail</a>",
		"<\x00>",
		"<a><b></a></b>",
		"<a>unclosed",
		"</a>",
		"text only",
		"<a>" + strings.Repeat("<b>", 40) + strings.Repeat("</b>", 40) + "</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		p := ParseString(doc)
		depth := 0
		events := 0
		for {
			ev, err := p.Next()
			if err != nil {
				break
			}
			events++
			if events > 1<<20 {
				t.Fatalf("parser produced over a million events for %d input bytes", len(doc))
			}
			switch ev.Kind {
			case Open:
				depth++
				if ev.Depth != depth {
					t.Fatalf("open %q at depth %d, parser stack says %d", ev.Name, ev.Depth, depth)
				}
			case Close:
				if ev.Depth != depth {
					t.Fatalf("close %q at depth %d, parser stack says %d", ev.Name, ev.Depth, depth)
				}
				depth--
				if depth < 0 {
					t.Fatal("more closes than opens")
				}
			case Text:
				if ev.Depth != depth {
					t.Fatalf("text at depth %d, parser stack says %d", ev.Depth, depth)
				}
			default:
				t.Fatalf("unknown event kind %v", ev.Kind)
			}
		}

		// Accepted documents round-trip: serialize the tree and re-parse to
		// the same tree.
		root, err := ParseTreeString(doc)
		if err != nil {
			return
		}
		xml := SerializeTree(root, false)
		again, err := ParseTreeString(xml)
		if err != nil {
			t.Fatalf("serialized form of an accepted document rejected: %v\ninput:  %q\noutput: %q", err, doc, xml)
		}
		if SerializeTree(again, false) != xml {
			t.Fatalf("serialize/parse round-trip unstable:\nfirst:  %q\nsecond: %q", xml, SerializeTree(again, false))
		}
	})
}
