package xmlstream

import "io"

// The two standard view sinks. They implement the structural interface
// consumed by the access-control evaluator (core.ViewSink): the evaluator
// pushes authorized open/text/close events into a sink as soon as their
// delivery condition settles, instead of materializing the whole view first.
//
// ViewSerializer turns the event stream directly into textual XML on an
// io.Writer (the streaming delivery path: bounded memory, first byte out as
// soon as the first authorized node settles). TreeSink collects the same
// stream into a Node tree (the materialized path used by the historical
// *Document API). Both consume the exact same stream, so the serialized tree
// is byte-identical to what the serializer wrote.

// ViewSerializer is a streaming view sink that serializes the authorized view
// to a writer as it is delivered, in compact or indented form. Its output is
// byte-identical to SerializeTree over the materialized view.
type ViewSerializer struct {
	s *Serializer
}

// NewViewSerializer returns a view sink writing textual XML to w.
func NewViewSerializer(w io.Writer, indent bool) *ViewSerializer {
	s := NewSerializer(w)
	s.Indent = indent
	return &ViewSerializer{s: s}
}

// OpenElement emits an opening tag.
func (v *ViewSerializer) OpenElement(name string) error {
	return v.s.WriteEvent(Event{Kind: Open, Name: name})
}

// Text emits escaped text content.
func (v *ViewSerializer) Text(value string) error {
	return v.s.WriteEvent(Event{Kind: Text, Value: value})
}

// CloseElement emits a closing tag.
func (v *ViewSerializer) CloseElement(name string) error {
	return v.s.WriteEvent(Event{Kind: Close, Name: name})
}

// End marks the end of the view; it reports any deferred write error.
func (v *ViewSerializer) End() error { return v.s.err }

// BytesWritten reports the number of bytes emitted so far.
func (v *ViewSerializer) BytesWritten() int64 { return v.s.BytesWritten() }

// TreeSink is a view sink that collects the delivered event stream into a
// Node tree (through a TreeBuilder). It adapts the historical
// materialized-document API to the streaming evaluator: the tree it builds
// is exactly the view the serializer sink would have written.
type TreeSink struct {
	b TreeBuilder
}

// NewTreeSink returns an empty TreeSink.
func NewTreeSink() *TreeSink { return &TreeSink{} }

// OpenElement implements the view-sink interface.
func (t *TreeSink) OpenElement(name string) error {
	return t.b.WriteEvent(Event{Kind: Open, Name: name})
}

// Text implements the view-sink interface.
func (t *TreeSink) Text(value string) error {
	return t.b.WriteEvent(Event{Kind: Text, Value: value})
}

// CloseElement implements the view-sink interface.
func (t *TreeSink) CloseElement(name string) error {
	return t.b.WriteEvent(Event{Kind: Close, Name: name})
}

// End implements the view-sink interface; it fails when elements are still
// open.
func (t *TreeSink) End() error {
	if t.b.err != nil {
		return t.b.err
	}
	if len(t.b.stack) != 0 {
		t.b.err = errUnclosedElements
		return t.b.err
	}
	return nil
}

// Root returns the collected tree; nil when the delivered view was empty
// (unlike TreeBuilder.Root, which treats an empty stream as malformed).
func (t *TreeSink) Root() *Node { return t.b.root }
