package xmlstream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parser is a hand-rolled streaming parser for the XML subset the paper's
// documents use: elements, text content and attributes (attributes are
// "handled in the model similarly to elements", section 2, so the parser
// exposes them as child elements prefixed with "@" when AttributesAsElements
// is set, and drops them otherwise). Namespaces, processing instructions,
// comments, CDATA and DTDs are tolerated and skipped. The parser keeps only
// O(depth) state, matching the SOE memory constraint.
type Parser struct {
	r     *bufio.Reader
	stack []string // open element names
	// queue of pending events produced by a single read step (attributes,
	// self-closing elements produce more than one event).
	queue []Event
	// AttributesAsElements controls whether attributes become synthetic
	// child elements named "@attr" containing a text node.
	AttributesAsElements bool
	err                  error
	consumed             int64
}

// NewParser returns a Parser reading a textual XML document from r.
func NewParser(r io.Reader) *Parser {
	return &Parser{r: bufio.NewReaderSize(r, 32*1024), AttributesAsElements: true}
}

// ParseString parses a full document held in a string.
func ParseString(doc string) *Parser {
	return NewParser(strings.NewReader(doc))
}

// BytesConsumed returns the number of raw input bytes consumed so far.
func (p *Parser) BytesConsumed() int64 { return p.consumed }

// Depth returns the current element nesting depth.
func (p *Parser) Depth() int { return len(p.stack) }

// Next implements EventReader.
func (p *Parser) Next() (Event, error) {
	if len(p.queue) > 0 {
		ev := p.queue[0]
		p.queue = p.queue[1:]
		return ev, nil
	}
	if p.err != nil {
		return Event{}, p.err
	}
	for {
		if err := p.fill(); err != nil {
			p.err = err
			return Event{}, err
		}
		if len(p.queue) > 0 {
			ev := p.queue[0]
			p.queue = p.queue[1:]
			return ev, nil
		}
	}
}

// fill reads one markup construct or one text run and appends the resulting
// events (possibly none, for comments and whitespace-only text) to the queue.
func (p *Parser) fill() error {
	c, err := p.readByte()
	if err != nil {
		if err == io.EOF {
			if len(p.stack) != 0 {
				return fmt.Errorf("%w: unexpected end of input inside <%s>", ErrMalformed, p.stack[len(p.stack)-1])
			}
			return ErrEndOfDocument
		}
		return err
	}
	if c != '<' {
		// Text run up to the next '<'.
		var sb strings.Builder
		sb.WriteByte(c)
		for {
			b, err := p.peekByte()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if b == '<' {
				break
			}
			p.mustReadByte()
			sb.WriteByte(b)
		}
		text := strings.TrimSpace(sb.String())
		if text != "" && len(p.stack) > 0 {
			p.queue = append(p.queue, Event{Kind: Text, Value: unescape(text), Depth: len(p.stack)})
		}
		return nil
	}
	// Markup.
	b, err := p.peekByte()
	if err != nil {
		return fmt.Errorf("%w: dangling '<'", ErrMalformed)
	}
	switch b {
	case '?':
		return p.skipUntil("?>")
	case '!':
		p.mustReadByte()
		b2, _ := p.peekByte()
		if b2 == '-' {
			return p.skipUntil("-->")
		}
		if b2 == '[' { // CDATA
			if err := p.expect("[CDATA["); err != nil {
				return err
			}
			content, err := p.readUntil("]]>")
			if err != nil {
				return err
			}
			if len(p.stack) > 0 && strings.TrimSpace(content) != "" {
				p.queue = append(p.queue, Event{Kind: Text, Value: content, Depth: len(p.stack)})
			}
			return nil
		}
		return p.skipUntil(">") // DOCTYPE etc.
	case '/':
		p.mustReadByte()
		name, err := p.readUntil(">")
		if err != nil {
			return err
		}
		name = strings.TrimSpace(name)
		if len(p.stack) == 0 {
			return fmt.Errorf("%w: closing tag </%s> with no open element", ErrMalformed, name)
		}
		top := p.stack[len(p.stack)-1]
		if top != name {
			return fmt.Errorf("%w: closing tag </%s> does not match <%s>", ErrMalformed, name, top)
		}
		depth := len(p.stack)
		p.stack = p.stack[:len(p.stack)-1]
		p.queue = append(p.queue, Event{Kind: Close, Name: name, Depth: depth})
		return nil
	default:
		raw, err := p.readUntil(">")
		if err != nil {
			return err
		}
		selfClosing := strings.HasSuffix(raw, "/")
		if selfClosing {
			raw = raw[:len(raw)-1]
		}
		name, attrs := splitTag(raw)
		if name == "" {
			return fmt.Errorf("%w: empty element name", ErrMalformed)
		}
		if strings.HasSuffix(name, "/") {
			// "<0//>" would parse here as an element named "0/" whose
			// serialized form reads back as self-closing: not representable.
			return fmt.Errorf("%w: element name %q ends with '/'", ErrMalformed, name)
		}
		if c := name[0]; c == '!' || c == '?' || c == '/' {
			// "< !x>" would produce an element whose serialized form starts
			// with markup-dispatch characters ("<!x>": DOCTYPE, "<?": PI,
			// "</": closing tag) and reads back as something else entirely.
			return fmt.Errorf("%w: element name %q starts with %q", ErrMalformed, name, c)
		}
		p.stack = append(p.stack, name)
		depth := len(p.stack)
		p.queue = append(p.queue, Event{Kind: Open, Name: name, Depth: depth})
		if p.AttributesAsElements {
			for _, a := range attrs {
				p.queue = append(p.queue, Event{Kind: Open, Name: "@" + a.name, Depth: depth + 1})
				// Attribute values get the same whitespace normalization as
				// document text runs, so a synthetic attribute element
				// serializes and re-parses to itself.
				if v := strings.TrimSpace(a.value); v != "" {
					p.queue = append(p.queue, Event{Kind: Text, Value: v, Depth: depth + 1})
				}
				p.queue = append(p.queue, Event{Kind: Close, Name: "@" + a.name, Depth: depth + 1})
			}
		}
		if selfClosing {
			p.stack = p.stack[:len(p.stack)-1]
			p.queue = append(p.queue, Event{Kind: Close, Name: name, Depth: depth})
		}
		return nil
	}
}

type attr struct{ name, value string }

// splitTag splits the inside of an opening tag into the element name and its
// attributes. Attribute values may be single or double quoted.
func splitTag(raw string) (string, []attr) {
	raw = strings.TrimSpace(raw)
	i := strings.IndexAny(raw, " \t\r\n")
	if i < 0 {
		return raw, nil
	}
	// TrimSpace covers more code points than the ASCII split set above (\v,
	// \f, NBSP, ...); trimming the extracted token keeps the open-tag name
	// byte-identical to what the closing-tag parse (which TrimSpaces the
	// whole name) will produce.
	name := strings.TrimSpace(raw[:i])
	rest := raw[i:]
	var attrs []attr
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		aname := strings.TrimSpace(rest[:eq])
		if j := strings.LastIndexAny(aname, " \t\r\n"); j >= 0 {
			// Bare tokens before a named attribute ("<a 0 0='v'>") are
			// malformed XML; the tolerance policy drops them — only the
			// name=value pair adjacent to the '=' survives, so synthetic
			// attribute elements never carry whitespace in their names.
			aname = aname[j+1:]
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t\r\n")
		if rest == "" {
			break
		}
		quote := rest[0]
		if quote != '"' && quote != '\'' {
			break
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			break
		}
		if aname != "" && !strings.HasSuffix(aname, "/") {
			attrs = append(attrs, attr{name: aname, value: unescape(rest[1 : 1+end])})
		}
		rest = rest[end+2:]
	}
	return name, attrs
}

func (p *Parser) readByte() (byte, error) {
	b, err := p.r.ReadByte()
	if err == nil {
		p.consumed++
	}
	return b, err
}

func (p *Parser) mustReadByte() byte {
	b, err := p.readByte()
	if err != nil {
		panic("xmlstream: mustReadByte after successful peek: " + err.Error())
	}
	return b
}

func (p *Parser) peekByte() (byte, error) {
	bs, err := p.r.Peek(1)
	if err != nil {
		return 0, err
	}
	return bs[0], nil
}

// readUntil consumes input up to and including the delimiter and returns the
// content before it.
func (p *Parser) readUntil(delim string) (string, error) {
	var sb strings.Builder
	for {
		b, err := p.readByte()
		if err != nil {
			return "", fmt.Errorf("%w: expected %q before end of input", ErrMalformed, delim)
		}
		sb.WriteByte(b)
		if strings.HasSuffix(sb.String(), delim) {
			s := sb.String()
			return s[:len(s)-len(delim)], nil
		}
	}
}

func (p *Parser) skipUntil(delim string) error {
	_, err := p.readUntil(delim)
	return err
}

func (p *Parser) expect(s string) error {
	for i := 0; i < len(s); i++ {
		b, err := p.readByte()
		if err != nil || b != s[i] {
			return fmt.Errorf("%w: expected %q", ErrMalformed, s)
		}
	}
	return nil
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	replacer := strings.NewReplacer(
		"&lt;", "<",
		"&gt;", ">",
		"&quot;", `"`,
		"&apos;", "'",
		"&amp;", "&",
	)
	return replacer.Replace(s)
}

// Escape escapes the XML special characters of a text value.
func Escape(s string) string {
	if !strings.ContainsAny(s, "<>&\"'") {
		return s
	}
	replacer := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&apos;",
	)
	return replacer.Replace(s)
}

// ParseTree parses a full document into a Node tree. It is used by the
// dataset round-trip tests and by the protect pipeline, not by the SOE.
func ParseTree(r io.Reader) (*Node, error) {
	p := NewParser(r)
	var stack []*Node
	var root *Node
	for {
		ev, err := p.Next()
		if errors.Is(err, ErrEndOfDocument) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case Open:
			n := NewElement(ev.Name)
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("%w: multiple root elements", ErrMalformed)
			}
			stack = append(stack, n)
		case Text:
			if len(stack) == 0 {
				continue
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, NewText(ev.Value))
		case Close:
			if len(stack) == 0 {
				return nil, fmt.Errorf("%w: unbalanced close event", ErrMalformed)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: empty document", ErrMalformed)
	}
	return root, nil
}

// ParseTreeString is ParseTree over a string.
func ParseTreeString(doc string) (*Node, error) {
	return ParseTree(strings.NewReader(doc))
}
