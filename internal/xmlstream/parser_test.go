package xmlstream

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParserSimpleDocument(t *testing.T) {
	doc := `<a><b>hello</b><c/></a>`
	p := ParseString(doc)
	want := []Event{
		{Kind: Open, Name: "a", Depth: 1},
		{Kind: Open, Name: "b", Depth: 2},
		{Kind: Text, Value: "hello", Depth: 2},
		{Kind: Close, Name: "b", Depth: 2},
		{Kind: Open, Name: "c", Depth: 2},
		{Kind: Close, Name: "c", Depth: 2},
		{Kind: Close, Name: "a", Depth: 1},
	}
	for i, w := range want {
		got, err := p.Next()
		if err != nil {
			t.Fatalf("event %d: unexpected error %v", i, err)
		}
		if got != w {
			t.Fatalf("event %d: got %v want %v", i, got, w)
		}
	}
	if _, err := p.Next(); err != ErrEndOfDocument {
		t.Fatalf("expected ErrEndOfDocument, got %v", err)
	}
}

func TestParserAttributesAsElements(t *testing.T) {
	doc := `<folder id="12" type='G3'>x</folder>`
	p := ParseString(doc)
	var got []Event
	for {
		ev, err := p.Next()
		if err != nil {
			break
		}
		got = append(got, ev)
	}
	want := []Event{
		{Kind: Open, Name: "folder", Depth: 1},
		{Kind: Open, Name: "@id", Depth: 2},
		{Kind: Text, Value: "12", Depth: 2},
		{Kind: Close, Name: "@id", Depth: 2},
		{Kind: Open, Name: "@type", Depth: 2},
		{Kind: Text, Value: "G3", Depth: 2},
		{Kind: Close, Name: "@type", Depth: 2},
		{Kind: Text, Value: "x", Depth: 1},
		{Kind: Close, Name: "folder", Depth: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestParserAttributesDisabled(t *testing.T) {
	p := ParseString(`<a id="1"><b/></a>`)
	p.AttributesAsElements = false
	var names []string
	for {
		ev, err := p.Next()
		if err != nil {
			break
		}
		if ev.Kind == Open {
			names = append(names, ev.Name)
		}
	}
	if strings.Join(names, ",") != "a,b" {
		t.Fatalf("unexpected open events: %v", names)
	}
}

func TestParserSkipsCommentsPIAndDoctype(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE a><a><!-- comment --><b>v</b></a>`
	root, err := ParseTreeString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "a" || root.ChildText("b") != "v" {
		t.Fatalf("unexpected tree: %s", SerializeTree(root, false))
	}
}

func TestParserCDATA(t *testing.T) {
	root, err := ParseTreeString(`<a><![CDATA[1 < 2 & 3]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text() != "1 < 2 & 3" {
		t.Fatalf("unexpected CDATA text %q", root.Text())
	}
}

func TestParserEntityUnescape(t *testing.T) {
	root, err := ParseTreeString(`<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text() != `<x> & "y" 'z'` {
		t.Fatalf("unexpected unescaped text %q", root.Text())
	}
}

func TestParserMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"mismatched close", `<a><b></a></b>`},
		{"unclosed element", `<a><b>`},
		{"stray close", `</a>`},
		{"empty name", `<><b/></>`},
		{"multiple roots via tree", `<a/><b/>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTreeString(tc.doc)
			if err == nil {
				t.Fatalf("expected error for %q", tc.doc)
			}
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrEndOfDocument) {
				t.Fatalf("expected ErrMalformed, got %v", err)
			}
		})
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	root := NewElement("hospital",
		NewElement("folder",
			Elem("age", "52"),
			NewElement("admin", Elem("name", "Alice & Bob"), Elem("ssn", "123")),
			NewElement("acts", Elem("act", "<checkup>")),
		),
		NewElement("folder", Elem("age", "31")),
	)
	text := SerializeTree(root, false)
	parsed, err := ParseTreeString(text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\n%s", err, text)
	}
	if !parsed.Equal(root) {
		t.Fatalf("round trip mismatch:\noriginal: %s\nparsed:   %s",
			SerializeTree(root, false), SerializeTree(parsed, false))
	}
}

func TestSerializeIndented(t *testing.T) {
	root := NewElement("a", Elem("b", "v"))
	out := SerializeTree(root, true)
	if !strings.Contains(out, "\n") || !strings.Contains(out, "  <b>") {
		t.Fatalf("expected indented output, got %q", out)
	}
	parsed, err := ParseTreeString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(root) {
		t.Fatal("indented output does not round trip")
	}
}

func TestTreeReaderSkipToClose(t *testing.T) {
	root := NewElement("a",
		NewElement("b", Elem("c", "1"), Elem("d", "2")),
		Elem("e", "3"),
	)
	r := NewTreeReader(root)
	// consume <a>, <b>
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	skipped, err := r.SkipToClose(2)
	if err != nil {
		t.Fatal(err)
	}
	if skipped <= 0 {
		t.Fatalf("expected positive skipped byte count, got %d", skipped)
	}
	ev, err := r.Next()
	if err != nil || ev.Kind != Close || ev.Name != "b" {
		t.Fatalf("expected </b> after skip, got %v err %v", ev, err)
	}
	ev, err = r.Next()
	if err != nil || ev.Kind != Open || ev.Name != "e" {
		t.Fatalf("expected <e> after </b>, got %v err %v", ev, err)
	}
}

func TestTreeBuilderRoundTrip(t *testing.T) {
	root := NewElement("r", NewElement("x", Elem("y", "1")), Elem("z", "2"))
	b := NewTreeBuilder()
	for _, ev := range root.Events(1) {
		if err := b.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(root) {
		t.Fatal("tree builder round trip mismatch")
	}
}

func TestTreeBuilderUnbalanced(t *testing.T) {
	b := NewTreeBuilder()
	_ = b.WriteEvent(Event{Kind: Open, Name: "a", Depth: 1})
	if _, err := b.Root(); err == nil {
		t.Fatal("expected error for unclosed element")
	}
}

func TestNodeHelpers(t *testing.T) {
	root := NewElement("folder",
		NewElement("admin", Elem("name", "Al"), Elem("age", "40")),
		NewElement("acts", NewElement("act", Elem("date", "2004"))),
	)
	if root.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4", root.MaxDepth())
	}
	if root.CountElements() != 7 {
		t.Errorf("CountElements = %d, want 7", root.CountElements())
	}
	if root.CountTextNodes() != 3 {
		t.Errorf("CountTextNodes = %d, want 3", root.CountTextNodes())
	}
	if root.TextLength() != len("Al")+len("40")+len("2004") {
		t.Errorf("TextLength = %d", root.TextLength())
	}
	if got := root.DistinctTags(); len(got) != 7 {
		t.Errorf("DistinctTags = %v", got)
	}
	if root.Child("admin") == nil || root.Child("missing") != nil {
		t.Error("Child lookup incorrect")
	}
	if root.Child("admin").ChildText("name") != "Al" {
		t.Error("ChildText incorrect")
	}
	if root.IsLeaf() {
		t.Error("root should not be a leaf")
	}
	if !root.Child("admin").Child("name").IsLeaf() {
		t.Error("name should be a leaf")
	}
	clone := root.Clone()
	if !clone.Equal(root) {
		t.Error("clone not equal to original")
	}
	clone.Child("admin").Child("name").Children[0].Value = "changed"
	if clone.Equal(root) {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestComputeStats(t *testing.T) {
	root := NewElement("a", Elem("b", "xx"), NewElement("c", Elem("d", "yyy")))
	st := ComputeStats(root)
	if st.Elements != 4 {
		t.Errorf("Elements = %d, want 4", st.Elements)
	}
	if st.TextNodes != 2 {
		t.Errorf("TextNodes = %d, want 2", st.TextNodes)
	}
	if st.TextSize != 5 {
		t.Errorf("TextSize = %d, want 5", st.TextSize)
	}
	if st.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", st.MaxDepth)
	}
	if st.DistinctTags != 4 {
		t.Errorf("DistinctTags = %d, want 4", st.DistinctTags)
	}
	if st.AvgDepth <= 1 || st.AvgDepth >= 3 {
		t.Errorf("AvgDepth = %f out of range", st.AvgDepth)
	}
	if st.SerializedSize != int64(len(SerializeTree(root, false))) {
		t.Error("SerializedSize mismatch")
	}
}

func TestEventKindString(t *testing.T) {
	if Open.String() != "open" || Text.String() != "text" || Close.String() != "close" {
		t.Fatal("EventKind.String mismatch")
	}
	if EventKind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

// TestPropertyEscapeUnescape checks that Escape/unescape are inverse for
// arbitrary strings.
func TestPropertyEscapeUnescape(t *testing.T) {
	f := func(s string) bool {
		return unescape(Escape(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEventsBalanced checks that any generated tree produces a
// balanced event stream that TreeBuilder accepts and reproduces.
func TestPropertyEventsBalanced(t *testing.T) {
	f := func(seed uint16, fanout uint8) bool {
		root := randomTree(int(seed), int(fanout%4)+1, 3)
		b := NewTreeBuilder()
		depthCheck := 0
		for _, ev := range root.Events(1) {
			switch ev.Kind {
			case Open:
				depthCheck++
				if ev.Depth != depthCheck {
					return false
				}
			case Close:
				if ev.Depth != depthCheck {
					return false
				}
				depthCheck--
			}
			if err := b.WriteEvent(ev); err != nil {
				return false
			}
		}
		if depthCheck != 0 {
			return false
		}
		got, err := b.Root()
		return err == nil && got.Equal(root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomTree builds a deterministic pseudo-random tree used by property
// tests. The generator is intentionally simple (LCG) to stay reproducible.
func randomTree(seed, fanout, depth int) *Node {
	state := uint32(seed*2654435761 + 1)
	next := func(n int) int {
		state = state*1664525 + 1013904223
		return int(state>>16) % n
	}
	tags := []string{"a", "b", "c", "d", "e", "f"}
	var build func(level int) *Node
	build = func(level int) *Node {
		n := NewElement(tags[next(len(tags))])
		if level >= depth {
			n.Children = append(n.Children, NewText("v"))
			return n
		}
		kids := next(fanout + 1)
		if kids == 0 {
			n.Children = append(n.Children, NewText("leaf"))
		}
		for i := 0; i < kids; i++ {
			n.Children = append(n.Children, build(level+1))
		}
		return n
	}
	return build(1)
}
