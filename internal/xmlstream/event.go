// Package xmlstream provides the streaming XML substrate used by the whole
// library: an event model equivalent to the SAX assumption made by the paper
// (open, value and close events), a lightweight hand-rolled parser producing
// that event stream, a DOM-lite tree used by the dataset generators and the
// Skip-index encoder, a serializer and document statistics.
//
// The paper (section 3.1) assumes "the evaluator is fed by an event-based
// parser (e.g., SAX) raising open, value and close events respectively for
// each opening, text and closing tag in the input document". This package is
// that parser plus the few document-side utilities the rest of the system
// needs.
package xmlstream

import "fmt"

// EventKind discriminates the three SAX-like events of the paper's model.
type EventKind int

const (
	// Open is raised for an opening tag.
	Open EventKind = iota
	// Text is raised for a text node ("value event" in the paper).
	Text
	// Close is raised for a closing tag.
	Close
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Open:
		return "open"
	case Text:
		return "text"
	case Close:
		return "close"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one SAX-like event. For Open and Close events Name carries the
// element tag; for Text events Value carries the text content. Depth is the
// depth of the element the event refers to, with the document root at depth 1
// (matching the depth convention used for token proxies in the paper's
// figures). For a Text event, Depth is the depth of the enclosing element.
type Event struct {
	Kind  EventKind
	Name  string
	Value string
	Depth int
}

// String renders a compact human-readable form used in traces and tests.
func (e Event) String() string {
	switch e.Kind {
	case Open:
		return fmt.Sprintf("<%s>@%d", e.Name, e.Depth)
	case Text:
		return fmt.Sprintf("%q@%d", e.Value, e.Depth)
	case Close:
		return fmt.Sprintf("</%s>@%d", e.Name, e.Depth)
	default:
		return "?"
	}
}

// EventReader is the interface consumed by the access-control evaluator.
// Next returns the next event or io.EOF when the document is exhausted.
type EventReader interface {
	Next() (Event, error)
}

// Skipper is implemented by event sources that can skip the remainder of a
// subtree without producing its events (the Skip-index decoder, which jumps
// using the encoded SubtreeSize, and the TreeReader which scans forward).
// The returned byte count is the amount of encoded input that was jumped
// over; the SOE cost model uses it to account for saved communication and
// decryption.
type Skipper interface {
	// SkipToClose discards every event up to, but not including, the next
	// Close event of the element at the given depth. The Close event itself
	// is returned by the following call to Next, so the consumer still
	// performs its normal end-of-element bookkeeping.
	SkipToClose(depth int) (int64, error)
}

// EventWriter receives a stream of events, typically to build the authorized
// view of a document.
type EventWriter interface {
	WriteEvent(Event) error
}
