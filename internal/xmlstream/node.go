package xmlstream

import (
	"sort"
	"strings"
)

// NodeKind discriminates element and text nodes of the DOM-lite tree.
type NodeKind int

const (
	// ElementNode is an XML element.
	ElementNode NodeKind = iota
	// TextNode is a text node.
	TextNode
)

// Node is a lightweight in-memory XML node. The tree form is used by the
// dataset generators, by the Skip-index encoder (which needs subtree sizes
// and descendant-tag sets before emitting an element) and by tests. The
// streaming evaluator itself never materializes the document, per the
// paper's memory constraint.
type Node struct {
	Kind     NodeKind
	Name     string  // element tag, empty for text nodes
	Value    string  // text content, empty for element nodes
	Children []*Node // element children in document order
}

// NewElement returns an element node with the given tag and children.
func NewElement(name string, children ...*Node) *Node {
	return &Node{Kind: ElementNode, Name: name, Children: children}
}

// NewText returns a text node with the given content.
func NewText(value string) *Node {
	return &Node{Kind: TextNode, Value: value}
}

// Elem builds an element whose single child is a text node; a convenient
// shorthand for leaf elements such as <age>52</age>.
func Elem(name, text string) *Node {
	return NewElement(name, NewText(text))
}

// Append adds children to the node and returns the node for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// IsLeaf reports whether the element has no element children (its children
// are text nodes only, or it is empty). Text nodes are leaves by definition.
func (n *Node) IsLeaf() bool {
	if n.Kind == TextNode {
		return true
	}
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			return false
		}
	}
	return true
}

// Text returns the concatenation of the direct text children of an element
// node, or the value of a text node.
func (n *Node) Text() string {
	if n.Kind == TextNode {
		return n.Value
	}
	var sb strings.Builder
	for _, c := range n.Children {
		if c.Kind == TextNode {
			sb.WriteString(c.Value)
		}
	}
	return sb.String()
}

// Child returns the first element child with the given tag, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first element child with the given tag.
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.Text()
	}
	return ""
}

// Walk calls fn for every node of the subtree in document order (pre-order).
// If fn returns false the children of the node are not visited.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CountElements returns the number of element nodes in the subtree,
// including the receiver when it is an element.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == ElementNode {
			count++
		}
		return true
	})
	return count
}

// CountTextNodes returns the number of text nodes in the subtree.
func (n *Node) CountTextNodes() int {
	count := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == TextNode {
			count++
		}
		return true
	})
	return count
}

// TextLength returns the total number of bytes of text content in the
// subtree.
func (n *Node) TextLength() int {
	total := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == TextNode {
			total += len(m.Value)
		}
		return true
	})
	return total
}

// MaxDepth returns the maximum element depth of the subtree, counting the
// receiver as depth 1.
func (n *Node) MaxDepth() int {
	if n.Kind == TextNode {
		return 0
	}
	max := 1
	for _, c := range n.Children {
		if c.Kind != ElementNode {
			continue
		}
		if d := c.MaxDepth() + 1; d > max {
			max = d
		}
	}
	return max
}

// DistinctTags returns the sorted set of distinct element tags appearing in
// the subtree (including the receiver's own tag).
func (n *Node) DistinctTags() []string {
	set := map[string]struct{}{}
	n.Walk(func(m *Node) bool {
		if m.Kind == ElementNode {
			set[m.Name] = struct{}{}
		}
		return true
	})
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// DescendantTags returns the set of element tags appearing strictly below
// the receiver plus the receiver's own tag, matching the DescTag(e) metadata
// of the Skip index (section 4.1 of the paper): "the set of tags that appear
// in the subtree rooted by an element e".
func (n *Node) DescendantTags() map[string]struct{} {
	set := map[string]struct{}{}
	n.Walk(func(m *Node) bool {
		if m.Kind == ElementNode {
			set[m.Name] = struct{}{}
		}
		return true
	})
	return set
}

// Events flattens the subtree into the SAX-like event stream the evaluator
// consumes. startDepth is the depth assigned to the receiver (the document
// root is conventionally 1).
func (n *Node) Events(startDepth int) []Event {
	var out []Event
	n.appendEvents(&out, startDepth)
	return out
}

func (n *Node) appendEvents(out *[]Event, depth int) {
	if n.Kind == TextNode {
		*out = append(*out, Event{Kind: Text, Value: n.Value, Depth: depth})
		return
	}
	*out = append(*out, Event{Kind: Open, Name: n.Name, Depth: depth})
	for _, c := range n.Children {
		if c.Kind == TextNode {
			*out = append(*out, Event{Kind: Text, Value: c.Value, Depth: depth})
		} else {
			c.appendEvents(out, depth+1)
		}
	}
	*out = append(*out, Event{Kind: Close, Name: n.Name, Depth: depth})
}

// Clone returns a deep copy of the subtree.
func (n *Node) Clone() *Node {
	cp := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports whether two subtrees are structurally identical (same kinds,
// names, values and child order).
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || n.Name != o.Name || n.Value != o.Value || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// TreeReader adapts an in-memory tree to the EventReader interface. It is
// mainly used by tests and by the brute-force (BF) strategy which parses the
// whole document without the benefit of the Skip index.
type TreeReader struct {
	events []Event
	pos    int
}

// NewTreeReader returns an EventReader over the given document tree.
func NewTreeReader(root *Node) *TreeReader {
	return &TreeReader{events: root.Events(1)}
}

// NewEventSliceReader returns an EventReader over a pre-built event slice.
func NewEventSliceReader(events []Event) *TreeReader {
	return &TreeReader{events: events}
}

// Next implements EventReader.
func (r *TreeReader) Next() (Event, error) {
	if r.pos >= len(r.events) {
		return Event{}, ErrEndOfDocument
	}
	ev := r.events[r.pos]
	r.pos++
	return ev, nil
}

// SkipToClose implements Skipper by scanning forward to the Close event of
// the element at the given depth. The returned byte count approximates the
// serialized size of what was skipped (tags plus text).
func (r *TreeReader) SkipToClose(depth int) (int64, error) {
	var skipped int64
	for r.pos < len(r.events) {
		ev := r.events[r.pos]
		if ev.Kind == Close && ev.Depth == depth {
			return skipped, nil
		}
		switch ev.Kind {
		case Open, Close:
			skipped += int64(len(ev.Name) + 2)
		case Text:
			skipped += int64(len(ev.Value))
		}
		r.pos++
	}
	return skipped, ErrEndOfDocument
}
