package xmlstream

import (
	"fmt"
	"io"
	"strings"
)

// Serializer writes an event stream back to textual XML. It implements
// EventWriter and is used to materialize the authorized view delivered by the
// access-control evaluator on the terminal side.
type Serializer struct {
	w      io.Writer
	Indent bool
	depth  int
	err    error
	// openTag tracks whether the last event was an Open so that empty
	// elements can be collapsed visually when indenting; kept simple: we
	// always emit explicit open/close pairs for fidelity with the paper's
	// structural rule.
	bytesWritten int64
}

// NewSerializer returns a Serializer writing to w.
func NewSerializer(w io.Writer) *Serializer {
	return &Serializer{w: w}
}

// BytesWritten reports the number of bytes emitted so far.
func (s *Serializer) BytesWritten() int64 { return s.bytesWritten }

// WriteEvent implements EventWriter.
func (s *Serializer) WriteEvent(ev Event) error {
	if s.err != nil {
		return s.err
	}
	switch ev.Kind {
	case Open:
		s.write(s.indentation())
		s.write("<" + ev.Name + ">")
		s.depth++
		if s.Indent {
			s.write("\n")
		}
	case Text:
		s.write(s.indentation())
		s.write(Escape(ev.Value))
		if s.Indent {
			s.write("\n")
		}
	case Close:
		s.depth--
		s.write(s.indentation())
		s.write("</" + ev.Name + ">")
		if s.Indent {
			s.write("\n")
		}
	default:
		s.err = fmt.Errorf("xmlstream: unknown event kind %v", ev.Kind)
	}
	return s.err
}

func (s *Serializer) indentation() string {
	if !s.Indent || s.depth == 0 {
		return ""
	}
	return strings.Repeat("  ", s.depth)
}

func (s *Serializer) write(str string) {
	if s.err != nil || str == "" {
		return
	}
	n, err := io.WriteString(s.w, str)
	s.bytesWritten += int64(n)
	if err != nil {
		s.err = err
	}
}

// SerializeTree renders a Node tree as textual XML.
func SerializeTree(root *Node, indent bool) string {
	var sb strings.Builder
	ser := NewSerializer(&sb)
	ser.Indent = indent
	for _, ev := range root.Events(1) {
		_ = ser.WriteEvent(ev)
	}
	return sb.String()
}

// TreeBuilder collects an event stream back into a Node tree. It is the
// EventWriter counterpart of TreeReader and is used by tests and by the
// result-reassembly logic to verify round trips.
type TreeBuilder struct {
	stack []*Node
	root  *Node
	err   error
}

// NewTreeBuilder returns an empty TreeBuilder.
func NewTreeBuilder() *TreeBuilder { return &TreeBuilder{} }

// WriteEvent implements EventWriter.
func (b *TreeBuilder) WriteEvent(ev Event) error {
	if b.err != nil {
		return b.err
	}
	switch ev.Kind {
	case Open:
		n := NewElement(ev.Name)
		if len(b.stack) > 0 {
			parent := b.stack[len(b.stack)-1]
			parent.Children = append(parent.Children, n)
		} else if b.root == nil {
			b.root = n
		} else {
			b.err = fmt.Errorf("%w: multiple root elements in event stream", ErrMalformed)
			return b.err
		}
		b.stack = append(b.stack, n)
	case Text:
		if len(b.stack) == 0 {
			b.err = fmt.Errorf("%w: text event outside any element", ErrMalformed)
			return b.err
		}
		parent := b.stack[len(b.stack)-1]
		parent.Children = append(parent.Children, NewText(ev.Value))
	case Close:
		if len(b.stack) == 0 {
			b.err = fmt.Errorf("%w: unbalanced close event", ErrMalformed)
			return b.err
		}
		b.stack = b.stack[:len(b.stack)-1]
	}
	return nil
}

// Root returns the built tree, or an error if the stream was unbalanced or
// empty.
func (b *TreeBuilder) Root() (*Node, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.root == nil {
		return nil, fmt.Errorf("%w: empty event stream", ErrMalformed)
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("%w: %d unclosed elements", ErrMalformed, len(b.stack))
	}
	return b.root, nil
}

// Stats summarizes the structural characteristics the paper reports in
// Table 2 for each dataset.
type Stats struct {
	// SerializedSize is the size in bytes of the textual XML form.
	SerializedSize int64
	// TextSize is the total number of bytes of text content.
	TextSize int64
	// MaxDepth is the maximum element nesting depth.
	MaxDepth int
	// AvgDepth is the average depth of elements.
	AvgDepth float64
	// DistinctTags is the number of distinct element names.
	DistinctTags int
	// TextNodes is the number of text nodes.
	TextNodes int
	// Elements is the number of element nodes.
	Elements int
}

// ComputeStats walks a document tree and computes its Table 2 statistics.
func ComputeStats(root *Node) Stats {
	var st Stats
	st.SerializedSize = int64(len(SerializeTree(root, false)))
	st.TextSize = int64(root.TextLength())
	st.MaxDepth = root.MaxDepth()
	st.DistinctTags = len(root.DistinctTags())
	st.TextNodes = root.CountTextNodes()
	st.Elements = root.CountElements()
	var depthSum, count int64
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n.Kind == ElementNode {
			depthSum += int64(depth)
			count++
		}
		for _, c := range n.Children {
			if c.Kind == ElementNode {
				walk(c, depth+1)
			}
		}
	}
	walk(root, 1)
	if count > 0 {
		st.AvgDepth = float64(depthSum) / float64(count)
	}
	return st
}
