package storage

import (
	"bytes"
	"testing"
)

// FuzzWALRecord drives the WAL record decoder with arbitrary bytes. The
// decoder sits on the recovery path — it parses whatever survives a crash —
// so it must never panic, never over-allocate past its declared bounds, and
// anything it does accept must re-encode byte-identically (the encoder and
// decoder agree on one canonical form).
func FuzzWALRecord(f *testing.F) {
	seeds := []Record{
		{Type: RecordRegister, Doc: "hospital", Meta: []byte(`{"version":1}`), Blob: []byte("XSEC\x02container bytes")},
		{Type: RecordPatch, Doc: "hospital", Meta: []byte("XDLT delta"), Blob: bytes.Repeat([]byte{7}, 64)},
		{Type: RecordPolicy, Doc: "hospital", Subject: "secretary", Meta: []byte(`{"rules":[{"id":"S1","sign":"+","object":"//Admin"}]}`)},
		{Type: RecordDelete, Doc: "gone"},
	}
	for _, r := range seeds {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(RecordRegister), 1, 0, 'd', 0, 0, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, enc)
		}
	})
}
