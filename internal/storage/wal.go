package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// The write-ahead log. Every store mutation is appended as one CRC-guarded
// frame and fsynced before the mutation is acknowledged, so an acknowledged
// write survives any crash. Appends from concurrent requests share fsyncs
// through group commit: the first waiter into the sync section syncs the
// file once for every frame written so far, and the waiters it covered
// return without touching the disk. Recovery reads frames until the first
// torn or corrupt one and truncates the file there — the WAL contract is
// prefix durability, never a holed history.

// walMagic opens a WAL file; the trailing byte is the format version.
var walMagic = []byte("XWAL\x01")

// frameHeaderSize is the per-record framing overhead: crc32 u32 | length u32.
const frameHeaderSize = 8

// maxFrameLen bounds a frame's declared payload length during recovery so a
// corrupt length field reads as a torn tail, not a giant allocation.
const maxFrameLen = maxBlobLen + maxMetaLen + 2*maxNameLen + 64

// wal is the append half of the engine.
type wal struct {
	path   string
	noSync bool

	// mu serializes frame writes and guards f and the append-side counters.
	mu        sync.Mutex
	f         *os.File
	size      int64
	appended  uint64 // frames written (not necessarily synced)
	records   atomic.Int64
	bytes     atomic.Int64
	appends   atomic.Int64
	fsyncs    atomic.Int64
	piggyback atomic.Int64

	// syncMu admits one group-commit leader at a time; synced is the highest
	// frame sequence covered by a completed fsync.
	syncMu sync.Mutex
	synced atomic.Uint64
}

// walRecord is one decoded frame with its file extent, as recovery sees it.
type walRecord struct {
	Record Record
	// Start and End are the frame's byte offsets in the file (End is the
	// offset of the next frame): the torture harness truncates at these
	// boundaries to simulate crashes between and inside commits.
	Start, End int64
}

// openWAL opens (or creates) the log at path, scans it, truncates any torn
// or corrupt tail, and returns the records of the durable prefix in append
// order along with the bytes dropped from the tail.
func openWAL(path string, noSync bool) (*wal, []walRecord, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	recs, good, total, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	dropped := total - good
	if dropped > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	w := &wal{path: path, noSync: noSync, f: f, size: good, appended: uint64(len(recs))}
	w.synced.Store(uint64(len(recs)))
	w.records.Store(int64(len(recs)))
	w.bytes.Store(good)
	return w, recs, dropped, nil
}

// scanWAL reads the log from the start: the file header (written lazily by
// the first append, so an empty file is a valid empty log), then frames
// until EOF or the first frame that is torn (short) or corrupt (bad CRC,
// implausible length, undecodable record). It returns the decoded records,
// the offset of the durable prefix and the file's total size.
func scanWAL(f *os.File) ([]walRecord, int64, int64, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	total := st.Size()
	if total == 0 {
		return nil, 0, 0, nil
	}
	header := make([]byte, len(walMagic))
	if _, err := f.ReadAt(header, 0); err != nil {
		// A file shorter than the header is a torn header write.
		return nil, 0, total, nil
	}
	for i, b := range walMagic {
		if header[i] != b {
			return nil, 0, 0, fmt.Errorf("storage: %s is not a WAL (bad magic)", f.Name())
		}
	}
	var recs []walRecord
	off := int64(len(walMagic))
	head := make([]byte, frameHeaderSize)
	for off < total {
		if _, err := f.ReadAt(head, off); err != nil {
			break // torn frame header
		}
		sum := binary.LittleEndian.Uint32(head[0:4])
		n := int64(binary.LittleEndian.Uint32(head[4:8]))
		if n > maxFrameLen || off+frameHeaderSize+n > total {
			break // implausible length or torn payload
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHeaderSize); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break // CRC-clean but undecodable: treat as corruption, stop here
		}
		recs = append(recs, walRecord{Record: rec, Start: off, End: off + frameHeaderSize + n})
		off += frameHeaderSize + n
	}
	return recs, off, total, nil
}

// errWALClosed reaches appenders racing a Close.
var errWALClosed = errors.New("storage: WAL is closed")

// append frames one record into the log and waits until a completed fsync
// covers it (group commit: the fsync is usually someone else's). On return
// the record is durable — the caller may acknowledge the mutation.
func (w *wal) append(rec Record) error {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	frame = append(frame, payload...)

	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return errWALClosed
	}
	if w.size == 0 {
		if _, err := w.f.Write(walMagic); err != nil {
			w.mu.Unlock()
			return err
		}
		w.size = int64(len(walMagic))
	}
	if _, err := w.f.Write(frame); err != nil {
		// A torn frame write is exactly what recovery truncates; leave the
		// tail to the next open rather than trying to repair in place.
		w.mu.Unlock()
		return err
	}
	w.size += int64(len(frame))
	w.appended++
	seq := w.appended
	w.records.Add(1)
	w.bytes.Store(w.size)
	w.appends.Add(1)
	w.mu.Unlock()
	return w.syncTo(seq)
}

// syncTo blocks until an fsync covering frame sequence seq has completed.
// The first caller into the sync section becomes the group leader: it syncs
// once for everything appended so far, and every waiter whose frame that
// fsync covered returns without issuing its own.
func (w *wal) syncTo(seq uint64) error {
	if w.noSync {
		return nil
	}
	if w.synced.Load() >= seq {
		w.piggyback.Add(1)
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= seq {
		// A leader that ran while this goroutine waited covered the frame.
		w.piggyback.Add(1)
		return nil
	}
	w.mu.Lock()
	f, cover := w.f, w.appended
	w.mu.Unlock()
	if f == nil {
		return errWALClosed
	}
	if err := f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	w.synced.Store(cover)
	return nil
}

// reset truncates the log to empty after a checkpoint made its contents
// redundant, fsyncing the truncation so a crash cannot resurrect compacted
// records on top of the new checkpoint.
func (w *wal) reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errWALClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.fsyncs.Add(1)
	}
	w.size = 0
	w.bytes.Store(0)
	w.records.Store(0)
	return nil
}

// walSize returns the log's current byte size.
func (w *wal) walSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// close releases the file. Appends racing a close fail with errWALClosed.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReadWALFile scans a WAL file offline and returns its durable records with
// their frame extents. Diagnostic surface for tests and tooling (the crash
// torture harness uses the extents to truncate at exact record boundaries);
// the file is not modified.
func ReadWALFile(path string) ([]WALRecordPos, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, _, err := scanWAL(f)
	if err != nil {
		return nil, err
	}
	out := make([]WALRecordPos, len(recs))
	for i, r := range recs {
		out[i] = WALRecordPos{Record: r.Record, Start: r.Start, End: r.End}
	}
	return out, nil
}

// WALRecordPos is one record with its byte extent in the log file.
type WALRecordPos struct {
	Record     Record
	Start, End int64
}
