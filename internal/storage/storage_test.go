package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		Type: RecordRegister,
		Doc:  fmt.Sprintf("doc-%d", i),
		Meta: []byte(fmt.Sprintf(`{"seq":%d}`, i)),
		Blob: bytes.Repeat([]byte{byte(i)}, 100+i),
	}
}

func recordsEqual(a, b Record) bool {
	return a.Type == b.Type && a.Doc == b.Doc && a.Subject == b.Subject &&
		bytes.Equal(a.Meta, b.Meta) && bytes.Equal(a.Blob, b.Blob)
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecordRegister, Doc: "hospital", Meta: []byte("{}"), Blob: []byte{1, 2, 3}},
		{Type: RecordPatch, Doc: "a", Meta: bytes.Repeat([]byte("m"), 1000)},
		{Type: RecordPolicy, Doc: "hospital", Subject: "secretary", Meta: []byte(`{"rules":[]}`)},
		{Type: RecordDelete, Doc: "gone"},
	}
	for _, want := range recs {
		enc, err := EncodeRecord(want)
		if err != nil {
			t.Fatalf("encode %v: %v", want.Type, err)
		}
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", want.Type, err)
		}
		if !recordsEqual(want, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", want, got)
		}
	}
}

func TestRecordDecodeRejectsGarbage(t *testing.T) {
	good, err := EncodeRecord(Record{Type: RecordRegister, Doc: "d", Blob: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"unknown type":  append([]byte{99}, good[1:]...),
		"truncated":     good[:len(good)-2],
		"trailing":      append(append([]byte(nil), good...), 0),
		"empty doc id":  {byte(RecordRegister), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"short doc len": {byte(RecordRegister), 5},
	}
	for name, data := range cases {
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("%s: decode accepted invalid payload", name)
		}
	}
	// A declared length larger than the buffer must fail cleanly, not allocate.
	huge := []byte{byte(RecordRegister), 1, 0, 'd', 0, 0, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeRecord(huge); err == nil {
		t.Error("oversized declared length accepted")
	}
}

func TestRecordEncodeBounds(t *testing.T) {
	if _, err := EncodeRecord(Record{Type: RecordRegister, Doc: ""}); err == nil {
		t.Error("empty doc id encoded")
	}
	if _, err := EncodeRecord(Record{Type: RecordType(9), Doc: "d"}); err == nil {
		t.Error("unknown type encoded")
	}
	if _, err := EncodeRecord(Record{Type: RecordRegister, Doc: string(bytes.Repeat([]byte("a"), maxNameLen+1))}); err == nil {
		t.Error("oversized doc id encoded")
	}
}

func TestWALAppendReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		r := testRecord(i)
		want = append(want, r)
		if err := e.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := e2.WALRecords()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if len(e2.CheckpointDocs()) != 0 {
		t.Fatalf("no checkpoint was taken, got %d docs", len(e2.CheckpointDocs()))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	walPath := filepath.Join(dir, "wal.log")
	recs, err := ReadWALFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("wal holds %d records, want 5", len(recs))
	}
	// Tear the file in the middle of the last frame.
	cut := recs[4].Start + (recs[4].End-recs[4].Start)/2
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e2.WALRecords()); got != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", got)
	}
	if d := e2.Stats().TailBytesDropped; d != cut-recs[4].Start {
		t.Fatalf("dropped %d tail bytes, want %d", d, cut-recs[4].Start)
	}
	// The truncation is durable: a re-open sees a clean 4-record log.
	e2.Close()
	recs, err = ReadWALFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("log holds %d records after truncation, want 4", len(recs))
	}
}

func TestWALCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	walPath := filepath.Join(dir, "wal.log")
	recs, err := ReadWALFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside record 2: CRC fails there, so recovery keeps
	// records 0-1 and drops everything from the corrupt frame on.
	f, err := os.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, recs[2].Start+frameHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := len(e2.WALRecords()); got != 2 {
		t.Fatalf("recovered %d records after corruption, want 2", got)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Prime the log so the lazy header write is out of the way.
	if err := e.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()

	// Hold the group-commit leader slot while N appends pile up behind it;
	// releasing it lets exactly one leader fsync for the whole group.
	const n = 8
	e.wal.syncMu.Lock()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- e.Append(testRecord(i))
		}(i)
	}
	for {
		e.wal.mu.Lock()
		appended := e.wal.appended
		e.wal.mu.Unlock()
		if appended >= uint64(n)+1 {
			break
		}
	}
	e.wal.syncMu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := e.Stats()
	if got := st.Fsyncs - base.Fsyncs; got != 1 {
		t.Fatalf("group of %d appends used %d fsyncs, want 1", n, got)
	}
	if got := st.GroupCommits - base.GroupCommits; got != n-1 {
		t.Fatalf("%d appends piggybacked, want %d", got, n-1)
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	snaps := []DocSnapshot{
		{Doc: "alpha", Meta: []byte(`{"v":3}`), Blob: bytes.Repeat([]byte("A"), 1300)},
		{Doc: "beta", Meta: []byte(`{"v":1}`), Blob: bytes.Repeat([]byte("B"), 512)},
		{Doc: "gamma", Meta: []byte(`{"v":7}`), Blob: []byte("tiny")},
	}
	for i := 0; i < 3; i++ {
		if err := e.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(snaps); err != nil {
		t.Fatal(err)
	}
	if e.WALSize() != 0 {
		t.Fatalf("wal size %d after checkpoint, want 0", e.WALSize())
	}
	// Post-checkpoint appends land in the fresh log.
	extra := Record{Type: RecordPolicy, Doc: "alpha", Subject: "s", Meta: []byte("{}")}
	if err := e.Append(extra); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, err := Open(dir, Options{PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	docs := e2.CheckpointDocs()
	if len(docs) != len(snaps) {
		t.Fatalf("recovered %d checkpoint docs, want %d", len(docs), len(snaps))
	}
	for i, d := range docs {
		if d.Doc != snaps[i].Doc || !bytes.Equal(d.Meta, snaps[i].Meta) {
			t.Fatalf("doc %d directory mismatch: %q", i, d.Doc)
		}
		blob, err := e2.ReadBlob(d)
		if err != nil {
			t.Fatalf("read blob %q: %v", d.Doc, err)
		}
		if !bytes.Equal(blob, snaps[i].Blob) {
			t.Fatalf("blob %q differs after recovery", d.Doc)
		}
	}
	wrecs := e2.WALRecords()
	if len(wrecs) != 1 || !recordsEqual(wrecs[0], extra) {
		t.Fatalf("recovered wal = %d records, want the 1 post-checkpoint append", len(wrecs))
	}

	// Re-reading the same blobs is all page-cache hits.
	st := e2.Stats()
	for _, d := range docs {
		if _, err := e2.ReadBlob(d); err != nil {
			t.Fatal(err)
		}
	}
	st2 := e2.Stats()
	if st2.PageCacheMisses != st.PageCacheMisses {
		t.Fatalf("re-read caused %d cache misses, want 0", st2.PageCacheMisses-st.PageCacheMisses)
	}
	if st2.PageCacheHits <= st.PageCacheHits {
		t.Fatal("re-read produced no cache hits")
	}
}

func TestCheckpointSupersedesOldGeneration(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Checkpoint([]DocSnapshot{{Doc: "d", Blob: bytes.Repeat([]byte("x"), 600)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadBlob(e.CheckpointDocs()[0]); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint bumps the generation: reads hit the new pages.
	if err := e.Checkpoint([]DocSnapshot{{Doc: "d", Blob: bytes.Repeat([]byte("y"), 700)}}); err != nil {
		t.Fatal(err)
	}
	blob, err := e.ReadBlob(e.CheckpointDocs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != 700 || blob[0] != 'y' {
		t.Fatalf("read stale generation: %d bytes, first %q", len(blob), blob[0])
	}
	if got := e.Stats().Checkpoints; got != 2 {
		t.Fatalf("Checkpoints = %d, want 2", got)
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	c := newPageCache(2)
	c.put(pageKey{1, 0}, []byte("a"))
	c.put(pageKey{1, 1}, []byte("b"))
	if c.get(pageKey{1, 0}) == nil { // promote page 0
		t.Fatal("miss on cached page")
	}
	c.put(pageKey{1, 2}, []byte("c")) // evicts page 1, the LRU tail
	if c.get(pageKey{1, 1}) != nil {
		t.Fatal("LRU tail survived eviction")
	}
	if c.get(pageKey{1, 0}) == nil || c.get(pageKey{1, 2}) == nil {
		t.Fatal("promoted or fresh page evicted")
	}
	if ev := c.evictions.Load(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked directory succeeded")
	}
	e.Close()
	// The lock dies with the descriptor: reopening after Close works.
	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	e2.Close()
}

func TestWALRecordExtents(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	recs, err := ReadWALFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(walMagic))
	for i, r := range recs {
		if r.Start != off {
			t.Fatalf("record %d starts at %d, want %d", i, r.Start, off)
		}
		if r.End <= r.Start+frameHeaderSize {
			t.Fatalf("record %d has empty extent", i)
		}
		off = r.End
	}
	st, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if off != st.Size() {
		t.Fatalf("extents cover %d bytes, file is %d", off, st.Size())
	}
}
