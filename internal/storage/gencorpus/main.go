// Command gencorpus regenerates the committed FuzzWALRecord seed corpus from
// canonical encoded records. Run from the repo root:
//
//	go run ./internal/storage/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"xmlac/internal/storage"
)

func main() {
	dir := "internal/storage/testdata/fuzz/FuzzWALRecord"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	seeds := map[string]storage.Record{
		"seed_register": {Type: storage.RecordRegister, Doc: "hospital", Meta: []byte(`{"version":1}`), Blob: []byte("XSEC\x02container bytes")},
		"seed_patch":    {Type: storage.RecordPatch, Doc: "hospital", Meta: []byte("XDLT delta"), Blob: []byte{7, 7, 7, 7, 7, 7, 7, 7}},
		"seed_policy":   {Type: storage.RecordPolicy, Doc: "hospital", Subject: "secretary", Meta: []byte(`{"rules":[{"id":"S1","sign":"+","object":"//Admin"}]}`)},
		"seed_delete":   {Type: storage.RecordDelete, Doc: "gone"},
	}
	for name, r := range seeds {
		enc, err := storage.EncodeRecord(r)
		if err != nil {
			panic(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", enc)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
	// A frame with a declared length far past the buffer: the decoder must
	// reject it without allocating.
	trunc := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", []byte{1, 1, 0, 'd', 0, 0, 0xff, 0xff, 0xff, 0x7f})
	if err := os.WriteFile(filepath.Join(dir, "seed_truncated"), []byte(trunc), 0o644); err != nil {
		panic(err)
	}
}
