package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// An atomic checkpoint compacts the WAL: the engine writes the whole store
// state into a fresh page file, fsyncs it, renames it over the previous
// checkpoint (the atomic commit point — a crash leaves either the old or the
// new checkpoint, never a blend) and only then truncates the log. A crash
// between rename and truncation replays compacted records on top of the new
// checkpoint; replay is version-aware on the server side, so that is
// harmless, merely redundant.
//
// Layout of checkpoint.db:
//
//	"XCKP\x01" | pageSize u32 | generation u64 | ndocs u32 |
//	directory: ndocs × (idLen u16 | id | metaLen u32 | meta |
//	                    blobLen u64 | firstPage u64) |
//	dirCRC u32 | zero padding to a page boundary | page area
//
// Blobs occupy consecutive pages in directory order; the directory (ids and
// metadata inline, blobs by page run) is CRC-guarded as a defence in depth —
// the rename protocol should already make a torn checkpoint impossible.

var checkpointMagic = []byte("XCKP\x01")

const checkpointName = "checkpoint.db"

// DocSnapshot is one document's durable state handed to Checkpoint: the
// opaque metadata payload and the full container bytes.
type DocSnapshot struct {
	Doc  string
	Meta []byte
	Blob []byte
}

// CheckpointDoc is one document as read back from a checkpoint directory.
type CheckpointDoc struct {
	Doc  string
	Meta []byte

	blobLen   int64
	firstPage int64
}

// writeCheckpoint builds the checkpoint file at path (complete and fsynced
// on return, not yet renamed into place).
func writeCheckpoint(path string, gen uint64, pageSize int, docs []DocSnapshot) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	header := append([]byte(nil), checkpointMagic...)
	header = binary.LittleEndian.AppendUint32(header, uint32(pageSize))
	header = binary.LittleEndian.AppendUint64(header, gen)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(docs)))
	nextPage := int64(0)
	for _, d := range docs {
		if len(d.Doc) == 0 || len(d.Doc) > maxNameLen {
			return fmt.Errorf("storage: checkpoint document id length %d out of range", len(d.Doc))
		}
		header = binary.LittleEndian.AppendUint16(header, uint16(len(d.Doc)))
		header = append(header, d.Doc...)
		header = binary.LittleEndian.AppendUint32(header, uint32(len(d.Meta)))
		header = append(header, d.Meta...)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(d.Blob)))
		header = binary.LittleEndian.AppendUint64(header, uint64(nextPage))
		nextPage += pagesFor(int64(len(d.Blob)), pageSize)
	}
	header = binary.LittleEndian.AppendUint32(header, crc32.ChecksumIEEE(header))
	// Pad the directory to a page boundary so page 0 of the data area starts
	// aligned and page arithmetic never mixes with the directory.
	if rem := len(header) % pageSize; rem != 0 {
		header = append(header, make([]byte, pageSize-rem)...)
	}
	if _, err := f.Write(header); err != nil {
		return err
	}
	pad := make([]byte, pageSize)
	for _, d := range docs {
		if _, err := f.Write(d.Blob); err != nil {
			return err
		}
		if rem := len(d.Blob) % pageSize; rem != 0 {
			if _, err := f.Write(pad[:pageSize-rem]); err != nil {
				return err
			}
		}
	}
	return f.Sync()
}

// openCheckpoint opens and validates the checkpoint at path, returning its
// directory and a page file for blob reads. A missing file returns
// (nil, nil, nil): an empty store.
func openCheckpoint(path string, cache *pageCache) (*pageFile, []CheckpointDoc, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// The directory is small next to the blobs; read it through a prefix
	// buffer that grows until the declared entries fit.
	parse := func(buf []byte) ([]CheckpointDoc, int, uint64, int, error) {
		pos := 0
		need := func(n int) ([]byte, error) {
			if len(buf)-pos < n {
				return nil, fmt.Errorf("storage: truncated checkpoint directory")
			}
			b := buf[pos : pos+n]
			pos += n
			return b, nil
		}
		if m, err := need(len(checkpointMagic)); err != nil {
			return nil, 0, 0, 0, err
		} else {
			for i, b := range checkpointMagic {
				if m[i] != b {
					return nil, 0, 0, 0, fmt.Errorf("storage: %s is not a checkpoint (bad magic)", path)
				}
			}
		}
		b, err := need(4 + 8 + 4)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		pageSize := int(binary.LittleEndian.Uint32(b[0:4]))
		gen := binary.LittleEndian.Uint64(b[4:12])
		ndocs := int(binary.LittleEndian.Uint32(b[12:16]))
		if pageSize < 512 || pageSize > 1<<24 {
			return nil, 0, 0, 0, fmt.Errorf("storage: implausible checkpoint page size %d", pageSize)
		}
		if ndocs > 1<<20 {
			return nil, 0, 0, 0, fmt.Errorf("storage: implausible checkpoint document count %d", ndocs)
		}
		docs := make([]CheckpointDoc, 0, ndocs)
		for i := 0; i < ndocs; i++ {
			lb, err := need(2)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			id, err := need(int(binary.LittleEndian.Uint16(lb)))
			if err != nil {
				return nil, 0, 0, 0, err
			}
			mb, err := need(4)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			metaLen := int(binary.LittleEndian.Uint32(mb))
			if metaLen > maxMetaLen {
				return nil, 0, 0, 0, fmt.Errorf("storage: checkpoint metadata length %d out of range", metaLen)
			}
			meta, err := need(metaLen)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			tail, err := need(16)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			docs = append(docs, CheckpointDoc{
				Doc:       string(id),
				Meta:      append([]byte(nil), meta...),
				blobLen:   int64(binary.LittleEndian.Uint64(tail[0:8])),
				firstPage: int64(binary.LittleEndian.Uint64(tail[8:16])),
			})
		}
		cb, err := need(4)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		want := binary.LittleEndian.Uint32(cb)
		if crc32.ChecksumIEEE(buf[:pos-4]) != want {
			return nil, 0, 0, 0, fmt.Errorf("storage: checkpoint directory CRC mismatch")
		}
		return docs, pageSize, gen, pos, nil
	}
	bufLen := int64(1 << 16)
	for {
		if bufLen > st.Size() {
			bufLen = st.Size()
		}
		buf := make([]byte, bufLen)
		if _, err := f.ReadAt(buf, 0); err != nil && int64(len(buf)) == bufLen {
			f.Close()
			return nil, nil, err
		}
		docs, pageSize, gen, _, perr := parse(buf)
		if perr != nil {
			if bufLen < st.Size() {
				bufLen *= 4 // directory larger than the prefix guess: retry bigger
				continue
			}
			f.Close()
			return nil, nil, perr
		}
		dirPages := pagesFor(dirSize(docs), pageSize)
		pf := &pageFile{
			f:        f,
			gen:      gen,
			pageSize: pageSize,
			dataOff:  dirPages * int64(pageSize),
			numPages: pagesFor(st.Size(), pageSize) - dirPages,
			cache:    cache,
		}
		return pf, docs, nil
	}
}

// dirSize recomputes the byte size of a checkpoint directory (header, inline
// entries, CRC) from its parsed entries.
func dirSize(docs []CheckpointDoc) int64 {
	n := int64(len(checkpointMagic) + 4 + 8 + 4)
	for _, d := range docs {
		n += 2 + int64(len(d.Doc)) + 4 + int64(len(d.Meta)) + 8 + 8
	}
	return n + 4
}

// replaceCheckpoint atomically installs tmpPath as the live checkpoint and
// fsyncs the directory so the rename itself is durable.
func replaceCheckpoint(dir, tmpPath string) error {
	if err := os.Rename(tmpPath, filepath.Join(dir, checkpointName)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
