// Package storage is the durable half of the untrusted store: a write-ahead
// log of opaque mutation records plus a page-backed checkpoint read through
// an LRU page cache. The paper's server is a dumb, durable blob host — this
// package supplies the durable part without ever interpreting a payload
// (containers, deltas and policies pass through as bytes; keys never enter).
//
// Durability contract:
//
//   - Append returns only after an fsync covers the record (group commit:
//     concurrent appenders share one fsync).
//   - Recovery replays the WAL prefix up to the first torn or corrupt frame
//     and truncates the rest; an acknowledged append is always in the prefix.
//   - Checkpoint atomically replaces the page file (write tmp, fsync, rename,
//     fsync dir) and only then truncates the WAL, so a crash anywhere leaves
//     either the old state or the new.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// Options tunes an engine. The zero value is usable: default page size and
// cache, fsync on every commit.
type Options struct {
	// PageSize is the checkpoint page granularity (DefaultPageSize when 0).
	PageSize int
	// CachePages bounds the LRU page cache (DefaultCachePages when 0).
	CachePages int
	// NoSync skips fsyncs (for benchmarks measuring the fsync cost, never
	// for production use: it voids the durability contract).
	NoSync bool
}

// Stats is a snapshot of the engine's counters, surfaced on /metrics.prom so
// cache and log behaviour is tuning input rather than a black box.
type Stats struct {
	WALRecords       int64 // records in the live log
	WALBytes         int64 // live log size in bytes
	WALAppends       int64 // appends since open
	Fsyncs           int64 // fsyncs issued since open
	GroupCommits     int64 // appends that piggybacked on another fsync
	Checkpoints      int64 // checkpoints taken since open
	TailBytesDropped int64 // torn-tail bytes truncated during recovery
	PageCacheHits    int64
	PageCacheMisses  int64
	PageCacheEvicts  int64
}

// Engine is one open data directory: LOCK file, checkpoint.db, wal.log.
type Engine struct {
	dir   string
	opts  Options
	lock  *os.File
	cache *pageCache

	wal *wal

	// mu guards the checkpoint swap (pages + recovered state).
	mu          sync.Mutex
	pages       *pageFile
	gen         uint64
	checkpoints int64

	recoveredDocs []CheckpointDoc
	recoveredWAL  []Record
	tailDropped   int64
}

// Open acquires the data directory (creating it if needed), loads the
// checkpoint, scans the WAL and truncates any torn tail. The recovered state
// is available through CheckpointDocs/ReadBlob/WALRecords until the next
// Checkpoint. A second concurrent Open of the same directory fails: the lock
// is an OS advisory lock, released automatically if the process dies.
func Open(dir string, opts Options) (*Engine, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.CachePages <= 0 {
		opts.CachePages = DefaultCachePages
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("storage: data directory %s is locked by another process: %w", dir, err)
	}
	// The pid in the lock file is diagnostic only; the flock is the lock.
	lock.Truncate(0)
	fmt.Fprintf(lock, "%d\n", os.Getpid())

	cache := newPageCache(opts.CachePages)
	pages, docs, err := openCheckpoint(filepath.Join(dir, checkpointName), cache)
	if err != nil {
		lock.Close()
		return nil, err
	}
	w, recs, dropped, err := openWAL(filepath.Join(dir, "wal.log"), opts.NoSync)
	if err != nil {
		if pages != nil {
			pages.f.Close()
		}
		lock.Close()
		return nil, err
	}
	e := &Engine{
		dir:           dir,
		opts:          opts,
		lock:          lock,
		cache:         cache,
		wal:           w,
		pages:         pages,
		recoveredDocs: docs,
		tailDropped:   dropped,
	}
	if pages != nil {
		e.gen = pages.gen
	}
	e.recoveredWAL = make([]Record, len(recs))
	for i, r := range recs {
		e.recoveredWAL[i] = r.Record
	}
	return e, nil
}

// CheckpointDocs returns the documents recovered from the checkpoint at Open
// (directory order, blobs still on disk — fetch them with ReadBlob).
func (e *Engine) CheckpointDocs() []CheckpointDoc {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.recoveredDocs
}

// ReadBlob reads one recovered document's container bytes through the page
// cache.
func (e *Engine) ReadBlob(d CheckpointDoc) ([]byte, error) {
	e.mu.Lock()
	pages := e.pages
	e.mu.Unlock()
	if pages == nil {
		return nil, fmt.Errorf("storage: no checkpoint to read %q from", d.Doc)
	}
	return pages.readRun(d.firstPage, d.blobLen)
}

// WALRecords returns the durable log records recovered at Open, in append
// order; the server replays them on top of the checkpoint.
func (e *Engine) WALRecords() []Record {
	return e.recoveredWAL
}

// Append logs one record durably. On return the record has been fsynced
// (unless NoSync) and will survive a crash.
func (e *Engine) Append(rec Record) error {
	return e.wal.append(rec)
}

// Checkpoint writes the full store state as a new page file generation,
// atomically installs it and truncates the WAL. docs must be the complete
// state: recovery after this point starts from exactly these snapshots.
func (e *Engine) Checkpoint(docs []DocSnapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	gen := e.gen + 1
	tmp := filepath.Join(e.dir, "checkpoint.tmp")
	if err := writeCheckpoint(tmp, gen, e.opts.PageSize, docs); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := replaceCheckpoint(e.dir, tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	f, err := os.Open(filepath.Join(e.dir, checkpointName))
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	// From here the new checkpoint is the durable truth; compact the log.
	// (A crash before reset replays WAL records the checkpoint already
	// contains — version-aware replay on the server side skips them.)
	if err := e.wal.reset(); err != nil {
		f.Close()
		return err
	}
	if e.pages != nil {
		e.pages.f.Close()
	}
	dirPages := pagesFor(checkpointDirBytes(docs), e.opts.PageSize)
	e.pages = &pageFile{
		f:        f,
		gen:      gen,
		pageSize: e.opts.PageSize,
		dataOff:  dirPages * int64(e.opts.PageSize),
		numPages: pagesFor(st.Size(), e.opts.PageSize) - dirPages,
		cache:    e.cache,
	}
	e.gen = gen
	e.checkpoints++
	// Recovery state from Open is superseded; rebuild the directory view so
	// ReadBlob keeps working against the new generation.
	e.recoveredDocs = e.recoveredDocs[:0]
	nextPage := int64(0)
	for _, d := range docs {
		e.recoveredDocs = append(e.recoveredDocs, CheckpointDoc{
			Doc:       d.Doc,
			Meta:      append([]byte(nil), d.Meta...),
			blobLen:   int64(len(d.Blob)),
			firstPage: nextPage,
		})
		nextPage += pagesFor(int64(len(d.Blob)), e.opts.PageSize)
	}
	e.recoveredWAL = nil
	return nil
}

// checkpointDirBytes is dirSize for the write-side snapshot type.
func checkpointDirBytes(docs []DocSnapshot) int64 {
	n := int64(len(checkpointMagic) + 4 + 8 + 4)
	for _, d := range docs {
		n += 2 + int64(len(d.Doc)) + 4 + int64(len(d.Meta)) + 8 + 8
	}
	return n + 4
}

// WALSize returns the live log's byte size (the server's checkpoint trigger
// watches this).
func (e *Engine) WALSize() int64 {
	return e.wal.walSize()
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	checkpoints := e.checkpoints
	dropped := e.tailDropped
	e.mu.Unlock()
	return Stats{
		WALRecords:       e.wal.records.Load(),
		WALBytes:         e.wal.bytes.Load(),
		WALAppends:       e.wal.appends.Load(),
		Fsyncs:           e.wal.fsyncs.Load(),
		GroupCommits:     e.wal.piggyback.Load(),
		Checkpoints:      checkpoints,
		TailBytesDropped: dropped,
		PageCacheHits:    e.cache.hits.Load(),
		PageCacheMisses:  e.cache.misses.Load(),
		PageCacheEvicts:  e.cache.evictions.Load(),
	}
}

// Close releases the WAL, page file and directory lock. The engine is not
// usable afterwards.
func (e *Engine) Close() error {
	err := e.wal.close()
	e.mu.Lock()
	if e.pages != nil {
		e.pages.f.Close()
		e.pages = nil
	}
	e.mu.Unlock()
	if e.lock != nil {
		// Closing the descriptor drops the flock.
		e.lock.Close()
		e.lock = nil
	}
	return err
}
