package storage

import (
	"container/list"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// The checkpoint is a page file: blob bytes live in fixed-size pages, and
// every read goes through an LRU page cache so re-reading a hot blob (or the
// directory walking a recovery) costs page-cache hits, not disk reads. Pages
// are keyed (generation, index) — each checkpoint bumps the generation, so a
// compaction invalidates stale cached pages for free instead of walking the
// cache.

// DefaultPageSize is the page granularity of the checkpoint file.
const DefaultPageSize = 4096

// DefaultCachePages bounds the LRU page cache (pages, not bytes): 256 pages
// of 4 KiB cache 1 MiB of the most recently read checkpoint data.
const DefaultCachePages = 256

// pageKey addresses one cached page.
type pageKey struct {
	gen  uint64
	page int64
}

// pageCache is a concurrency-safe LRU of checkpoint pages with hit/miss
// accounting (surfaced on /metrics.prom — cache behaviour is tuning input,
// not a hard-coded constant, per the auto-administration line of work).
type pageCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[pageKey]*list.Element
	order     *list.List // front = most recently used
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type pageEntry struct {
	key  pageKey
	data []byte
}

func newPageCache(capacity int) *pageCache {
	if capacity <= 0 {
		capacity = DefaultCachePages
	}
	return &pageCache{
		capacity: capacity,
		entries:  make(map[pageKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// get returns the cached page or nil, promoting hits to most-recently-used.
func (c *pageCache) get(key pageKey) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*pageEntry).data
	}
	c.misses.Add(1)
	return nil
}

// put inserts a page, evicting from the LRU tail when full.
func (c *pageCache) put(key pageKey, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*pageEntry).data = data
		return
	}
	c.entries[key] = c.order.PushFront(&pageEntry{key: key, data: data})
	for len(c.entries) > c.capacity {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*pageEntry).key)
		c.evictions.Add(1)
	}
}

// pageFile is the read side of one checkpoint generation: fixed-size pages
// starting at dataOff in the file, read through the shared cache.
type pageFile struct {
	f        *os.File
	gen      uint64
	pageSize int
	dataOff  int64 // file offset of page 0
	numPages int64
	cache    *pageCache
}

// readPage returns one page (the last page may be short), serving from the
// cache when possible.
func (p *pageFile) readPage(page int64) ([]byte, error) {
	if page < 0 || page >= p.numPages {
		return nil, fmt.Errorf("storage: page %d out of range (%d pages)", page, p.numPages)
	}
	key := pageKey{gen: p.gen, page: page}
	if data := p.cache.get(key); data != nil {
		return data, nil
	}
	buf := make([]byte, p.pageSize)
	n, err := p.f.ReadAt(buf, p.dataOff+page*int64(p.pageSize))
	if err != nil && (n == 0 || page != p.numPages-1) {
		return nil, fmt.Errorf("storage: reading checkpoint page %d: %w", page, err)
	}
	buf = buf[:n]
	p.cache.put(key, buf)
	return buf, nil
}

// readRun assembles length bytes starting at the given first page: how a
// blob stored as a page run comes back out. Every page passes through the
// cache, so re-reading a blob after recovery is all hits.
func (p *pageFile) readRun(firstPage int64, length int64) ([]byte, error) {
	out := make([]byte, 0, length)
	for page := firstPage; int64(len(out)) < length; page++ {
		data, err := p.readPage(page)
		if err != nil {
			return nil, err
		}
		need := length - int64(len(out))
		if int64(len(data)) > need {
			data = data[:need]
		}
		out = append(out, data...)
		if int64(len(data)) < need && len(data) < p.pageSize {
			return nil, fmt.Errorf("storage: checkpoint page run truncated at page %d", page)
		}
	}
	return out, nil
}

// pagesFor returns how many pages a byte length occupies.
func pagesFor(length int64, pageSize int) int64 {
	return (length + int64(pageSize) - 1) / int64(pageSize)
}
