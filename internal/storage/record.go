package storage

import (
	"encoding/binary"
	"fmt"
)

// A Record is one durable mutation in the write-ahead log. The storage layer
// treats the Meta and Blob payloads as opaque bytes — the server composes
// them (a registration carries the full marshalled container as a full-blob
// record, a PATCH carries the binary update delta plus the dirty byte
// ranges) and interprets them again on replay. Keeping the engine blind to
// the payload keeps the trust layering clean: nothing in internal/storage
// ever handles a policy, a key or plaintext.
type Record struct {
	// Type says how the server interprets the payloads on replay.
	Type RecordType
	// Doc is the document id the record mutates.
	Doc string
	// Subject is the policy subject of RecordPolicy records ("" otherwise).
	Subject string
	// Meta is the small structured part of the payload (registration
	// metadata, the marshalled update delta, the policy JSON).
	Meta []byte
	// Blob is the bulk part: the full container for registrations, the new
	// container prefix plus dirty chunk bytes for patches.
	Blob []byte
}

// RecordType names the WAL record kinds.
type RecordType uint8

const (
	// RecordRegister installs a document: Blob is the full marshalled
	// protected container (registration and re-registration alike).
	RecordRegister RecordType = 1
	// RecordPatch advances a document one version: Meta is the marshalled
	// binary UpdateDelta, Blob the dirty byte ranges of the new container.
	RecordPatch RecordType = 2
	// RecordPolicy installs one subject's policy over a document.
	RecordPolicy RecordType = 3
	// RecordDelete removes a document and everything attached to it.
	RecordDelete RecordType = 4
)

// recordTypeValid reports whether t is a known record type.
func recordTypeValid(t RecordType) bool {
	return t >= RecordRegister && t <= RecordDelete
}

// Payload size bounds enforced by the decoder: a corrupted length field must
// fail parsing instead of driving a giant allocation.
const (
	maxNameLen = 1 << 10 // document ids and subjects
	maxMetaLen = 1 << 24 // 16 MiB of structured metadata
	maxBlobLen = 1 << 30 // 1 GiB of container bytes
)

// EncodeRecord serializes a record to the byte payload framed into the WAL:
//
//	type u8 | docLen u16 | doc | subjLen u16 | subj | metaLen u32 | meta |
//	blobLen u32 | blob
//
// All integers little-endian. The frame around it (length prefix + CRC) is
// the WAL's concern; see wal.go.
func EncodeRecord(r Record) ([]byte, error) {
	if !recordTypeValid(r.Type) {
		return nil, fmt.Errorf("storage: encoding unknown record type %d", r.Type)
	}
	if len(r.Doc) == 0 || len(r.Doc) > maxNameLen {
		return nil, fmt.Errorf("storage: record document id length %d out of range", len(r.Doc))
	}
	if len(r.Subject) > maxNameLen {
		return nil, fmt.Errorf("storage: record subject length %d out of range", len(r.Subject))
	}
	if len(r.Meta) > maxMetaLen {
		return nil, fmt.Errorf("storage: record metadata length %d out of range", len(r.Meta))
	}
	if len(r.Blob) > maxBlobLen {
		return nil, fmt.Errorf("storage: record blob length %d out of range", len(r.Blob))
	}
	out := make([]byte, 0, 1+2+len(r.Doc)+2+len(r.Subject)+4+len(r.Meta)+4+len(r.Blob))
	out = append(out, byte(r.Type))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Doc)))
	out = append(out, r.Doc...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Subject)))
	out = append(out, r.Subject...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.Meta)))
	out = append(out, r.Meta...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.Blob)))
	out = append(out, r.Blob...)
	return out, nil
}

// DecodeRecord parses one WAL record payload, validating every length field
// against the encoder's bounds and rejecting trailing garbage. It never
// aliases data: the returned record owns its bytes, so callers may recycle
// the input buffer.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	pos := 0
	need := func(n int) ([]byte, error) {
		if n < 0 || len(data)-pos < n {
			return nil, fmt.Errorf("storage: truncated record (%d bytes short at offset %d)", n-(len(data)-pos), pos)
		}
		b := data[pos : pos+n]
		pos += n
		return b, nil
	}
	tb, err := need(1)
	if err != nil {
		return r, err
	}
	r.Type = RecordType(tb[0])
	if !recordTypeValid(r.Type) {
		return r, fmt.Errorf("storage: unknown record type %d", tb[0])
	}
	readStr := func(what string, max int) (string, error) {
		lb, err := need(2)
		if err != nil {
			return "", err
		}
		n := int(binary.LittleEndian.Uint16(lb))
		if n > max {
			return "", fmt.Errorf("storage: record %s length %d out of range", what, n)
		}
		b, err := need(n)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	readBytes := func(what string, max int) ([]byte, error) {
		lb, err := need(4)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(lb))
		if n > max {
			return nil, fmt.Errorf("storage: record %s length %d out of range", what, n)
		}
		b, err := need(n)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	}
	if r.Doc, err = readStr("document id", maxNameLen); err != nil {
		return r, err
	}
	if r.Doc == "" {
		return r, fmt.Errorf("storage: record carries an empty document id")
	}
	if r.Subject, err = readStr("subject", maxNameLen); err != nil {
		return r, err
	}
	if r.Meta, err = readBytes("metadata", maxMetaLen); err != nil {
		return r, err
	}
	if r.Blob, err = readBytes("blob", maxBlobLen); err != nil {
		return r, err
	}
	if pos != len(data) {
		return r, fmt.Errorf("storage: %d trailing bytes after record", len(data)-pos)
	}
	return r, nil
}
