package experiments

import (
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	return cfg
}

func TestTable1(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.CommMBps != r.PaperComm || r.DecryptMBps != r.PaperDecrypt {
			t.Errorf("%s: cost model constants differ from Table 1: %+v", r.Context, r)
		}
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestTable2(t *testing.T) {
	res := Table2(smallConfig())
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Measured.Elements == 0 || r.Measured.TextSize == 0 {
			t.Errorf("%s: empty measurement", r.Name)
		}
		// Depth characteristics do not depend on scale and must be close to
		// the paper's.
		if r.Name == "WSU" && r.Measured.MaxDepth > r.PaperMaxDepth {
			t.Errorf("WSU max depth %d exceeds the paper's %d", r.Measured.MaxDepth, r.PaperMaxDepth)
		}
		if r.Name == "Treebank" && r.Measured.DistinctTags < 100 {
			t.Errorf("Treebank should have a large tag vocabulary, got %d", r.Measured.DistinctTags)
		}
	}
	if !strings.Contains(res.Render(), "Hospital") {
		t.Error("render missing dataset")
	}
}

func TestFigure8(t *testing.T) {
	res := Figure8(smallConfig())
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		nc := r.RatioPercent["NC"]
		tc := r.RatioPercent["TC"]
		tcs := r.RatioPercent["TCS"]
		tcsb := r.RatioPercent["TCSB"]
		tcsbr := r.RatioPercent["TCSBR"]
		// The qualitative shape of Figure 8.
		if !(nc > tc) {
			t.Errorf("%s: NC (%f) should dominate TC (%f)", r.Dataset, nc, tc)
		}
		if !(tcs >= tc) || !(tcsb >= tcs) {
			t.Errorf("%s: expected TC <= TCS <= TCSB, got %f %f %f", r.Dataset, tc, tcs, tcsb)
		}
		if !(tcsbr < tcsb) {
			t.Errorf("%s: recursive encoding should compress TCSB (%f vs %f)", r.Dataset, tcsbr, tcsb)
		}
	}
	if !strings.Contains(res.Render(), "TCSBR") {
		t.Error("render missing variant")
	}
}

func TestFigure9(t *testing.T) {
	res, err := Figure9(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 profiles, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The headline shape: BF is far worse than TCSBR, which is close to
		// LWB.
		if !(r.BFSeconds > r.TCSBRSeconds) {
			t.Errorf("%s: BF (%f) must be slower than TCSBR (%f)", r.Profile, r.BFSeconds, r.TCSBRSeconds)
		}
		if r.TCSBROverLWB < 0.9 {
			t.Errorf("%s: TCSBR cannot beat the oracle by much (ratio %f)", r.Profile, r.TCSBROverLWB)
		}
		if r.TCSBROverLWB > 10.0 {
			t.Errorf("%s: TCSBR should stay within an order of magnitude of LWB (ratio %f)", r.Profile, r.TCSBROverLWB)
		}
		if r.BFOverLWB < r.TCSBROverLWB {
			t.Errorf("%s: BF/LWB must exceed TCSBR/LWB", r.Profile)
		}
		// Decryption and communication dominate; access control is a small
		// share (the paper reports 2-15%).
		if r.AccessControlPct > 35 {
			t.Errorf("%s: access control share too large: %f%%", r.Profile, r.AccessControlPct)
		}
		if r.DecryptionPct < 30 {
			t.Errorf("%s: decryption should dominate: %f%%", r.Profile, r.DecryptionPct)
		}
	}
	// Secretary view is smaller than the doctor view (135KB vs 575KB in the
	// paper).
	if res.Rows[0].ViewBytes >= res.Rows[1].ViewBytes {
		t.Errorf("secretary view (%d) should be smaller than doctor view (%d)",
			res.Rows[0].ViewBytes, res.Rows[1].ViewBytes)
	}
	if !strings.Contains(res.Render(), "TCSBR/LWB") {
		t.Error("render missing ratio column")
	}
}

func TestFigure10(t *testing.T) {
	res, err := Figure10(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("expected 5 series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.View)
		}
		// Execution time decreases as the result shrinks (the paper reports
		// a linear relation). Points are sorted by increasing result size; a
		// 2% tolerance absorbs the fixed per-run overhead that dominates
		// views whose size barely changes across thresholds.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Seconds < s.Points[i-1].Seconds*0.98 {
				t.Errorf("series %s: time should not decrease when the result grows (%f -> %f)",
					s.View, s.Points[i-1].Seconds, s.Points[i].Seconds)
			}
		}
		// Even an empty result has a non-zero cost ("the execution time is
		// not null since parts of the document have to be analysed before
		// being skipped").
		if s.Points[0].Seconds <= 0 {
			t.Errorf("series %s: empty-result query should still cost something", s.View)
		}
	}
	// The full-time doctor view is larger than the part-time doctor view for
	// the least selective query.
	last := func(view string) float64 {
		for _, s := range res.Series {
			if s.View == view {
				return s.Points[len(s.Points)-1].ResultKB
			}
		}
		return -1
	}
	if last("FTD") <= last("PTD") {
		t.Errorf("FTD view (%f KB) should exceed PTD view (%f KB)", last("FTD"), last("PTD"))
	}
	if !strings.Contains(res.Render(), "Age > v") {
		t.Error("render missing header")
	}
}

func TestFigure11(t *testing.T) {
	res, err := Figure11(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		ecb := r.Seconds["ECB"]
		mht := r.Seconds["ECB-MHT"]
		shac := r.Seconds["CBC-SHAC"]
		sha := r.Seconds["CBC-SHA"]
		if !(ecb < mht && mht < shac && shac <= sha) {
			t.Errorf("%s: expected ECB < ECB-MHT < CBC-SHAC <= CBC-SHA, got %.2f %.2f %.2f %.2f",
				r.Profile, ecb, mht, shac, sha)
		}
		// The integrity overhead of the proposed scheme stays moderate (the
		// paper reports 32-38%; highly selective profiles pay more here
		// because their reads are small relative to the fragment size, see
		// EXPERIMENTS.md) and in particular far below the CBC schemes.
		mhtOverhead := mht - ecb
		shacOverhead := shac - ecb
		if mhtOverhead > shacOverhead*0.75 {
			t.Errorf("%s: ECB-MHT overhead (%.3f) should be well below CBC-SHAC overhead (%.3f)",
				r.Profile, mhtOverhead, shacOverhead)
		}
		if (mht-ecb)/ecb > 1.5 {
			t.Errorf("%s: ECB-MHT overhead too large: %.0f%%", r.Profile, (mht-ecb)/ecb*100)
		}
	}
	if !strings.Contains(res.Render(), "ECB-MHT") {
		t.Error("render missing scheme")
	}
}

func TestFigure12(t *testing.T) {
	res, err := Figure12(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 workloads (3 datasets + 3 profiles), got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		tcsbr := r.ThroughputKBps["TCSBR-NoIntegrity"]
		tcsbrI := r.ThroughputKBps["TCSBR-Integrity"]
		lwb := r.ThroughputKBps["LWB-NoIntegrity"]
		if tcsbr <= 0 {
			t.Errorf("%s: throughput must be positive", r.Workload)
		}
		if tcsbrI > tcsbr*1.01 {
			t.Errorf("%s: integrity cannot improve throughput (%.1f vs %.1f)", r.Workload, tcsbrI, tcsbr)
		}
		if lwb > 0 && tcsbr > lwb*1.05 {
			t.Errorf("%s: TCSBR throughput (%.1f) cannot exceed the oracle (%.1f)", r.Workload, tcsbr, lwb)
		}
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Error("render missing title")
	}
}

func TestConfigNormalize(t *testing.T) {
	var empty Config
	n := empty.normalize()
	if n.Scale <= 0 || n.Profile.Name == "" || len(n.Key) != 24 {
		t.Fatalf("normalize did not fill defaults: %+v", n)
	}
}
