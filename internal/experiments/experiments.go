// Package experiments regenerates every table and figure of the paper's
// evaluation section (section 7): Table 1 (cost profiles), Table 2 (document
// characteristics), Figure 8 (index storage overhead), Figure 9 (access
// control overhead), Figure 10 (impact of queries), Figure 11 (integrity
// control) and Figure 12 (performance on real datasets). Each experiment
// returns a structured result and can render itself as a text table whose
// rows mirror the ones the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"

	"xmlac/internal/accessrule"
	"xmlac/internal/dataset"
	"xmlac/internal/secure"
	"xmlac/internal/skipindex"
	"xmlac/internal/soe"
	"xmlac/internal/xmlstream"
)

// Config controls the size of the generated workloads. Scale 1.0 aims at the
// paper's document sizes (3.6 MB Hospital, 59 MB Treebank); the default used
// by the test suite and the Go benchmarks is much smaller so runs stay
// fast, while the xmlac-bench command can raise it.
type Config struct {
	// Scale multiplies the dataset generator sizes.
	Scale float64
	// Profile is the cost profile used for execution-time estimates
	// (default: the hardware smart card of Table 1, the platform the paper
	// measures).
	Profile soe.CostProfile
	// Key encrypts the workloads.
	Key secure.Key
}

// DefaultConfig returns the configuration used by tests and benchmarks.
func DefaultConfig() Config {
	return Config{
		Scale:   0.02,
		Profile: soe.HardwareSmartCard(),
		Key:     secure.DeriveKey("xmlac-experiments"),
	}
}

func (c Config) normalize() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Profile.Name == "" {
		c.Profile = soe.HardwareSmartCard()
	}
	if len(c.Key) != 24 {
		c.Key = secure.DeriveKey("xmlac-experiments")
	}
	return c
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

// Table1Row is one row of Table 1.
type Table1Row struct {
	Context      string
	CommMBps     float64
	DecryptMBps  float64
	PaperComm    float64
	PaperDecrypt float64
}

// Table1Result reproduces Table 1 (communication and decryption costs).
type Table1Result struct {
	Rows []Table1Row
}

// Table1 returns the communication/decryption constants used by the cost
// model alongside the values published in the paper.
func Table1() *Table1Result {
	res := &Table1Result{}
	paper := map[string][2]float64{
		"hardware":          {0.5, 0.15},
		"software-internet": {0.1, 1.2},
		"software-lan":      {10, 1.2},
	}
	for _, p := range soe.Profiles() {
		row := Table1Row{
			Context:     p.Name,
			CommMBps:    p.CommBytesPerSec / (1024 * 1024),
			DecryptMBps: p.DecryptBytesPerSec / (1024 * 1024),
		}
		row.PaperComm = paper[p.Name][0]
		row.PaperDecrypt = paper[p.Name][1]
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result as a text table.
func (t *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Communication and decryption costs\n")
	fmt.Fprintf(&sb, "%-20s %14s %14s %14s %14s\n", "Context", "Comm (MB/s)", "Decrypt (MB/s)", "paper comm", "paper decrypt")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-20s %14.2f %14.2f %14.2f %14.2f\n", r.Context, r.CommMBps, r.DecryptMBps, r.PaperComm, r.PaperDecrypt)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

// Table2Row describes one generated dataset next to the paper's reported
// characteristics of the original.
type Table2Row struct {
	Name string
	// Measured characteristics of the generated document at the configured
	// scale.
	Measured xmlstream.Stats
	// Paper values (full-size originals).
	PaperSizeBytes    int64
	PaperTextBytes    int64
	PaperMaxDepth     int
	PaperAvgDepth     float64
	PaperDistinctTags int
	PaperTextNodes    int
	PaperElements     int
	// Scale used for the generation.
	Scale float64
}

// Table2Result reproduces Table 2 (documents characteristics).
type Table2Result struct {
	Rows []Table2Row
}

// Table2 generates each dataset at the configured scale and measures it.
func Table2(cfg Config) *Table2Result {
	cfg = cfg.normalize()
	res := &Table2Result{}
	for _, spec := range dataset.Specs() {
		doc := spec.Generate(cfg.Scale)
		res.Rows = append(res.Rows, Table2Row{
			Name:              spec.Name,
			Measured:          xmlstream.ComputeStats(doc),
			PaperSizeBytes:    spec.PaperSizeBytes,
			PaperTextBytes:    spec.PaperTextBytes,
			PaperMaxDepth:     spec.PaperMaxDepth,
			PaperAvgDepth:     spec.PaperAvgDepth,
			PaperDistinctTags: spec.PaperDistinctTags,
			PaperTextNodes:    spec.PaperTextNodes,
			PaperElements:     spec.PaperElements,
			Scale:             cfg.Scale,
		})
	}
	return res
}

// Render formats the result as a text table.
func (t *Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 2. Documents characteristics (measured at scale / paper full size)\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s %10s %8s %12s %12s\n",
		"Dataset", "Size", "Text size", "Max depth", "Avg depth", "#tags", "#text nodes", "#elements")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %12d %12d %10d %10.1f %8d %12d %12d\n",
			r.Name, r.Measured.SerializedSize, r.Measured.TextSize, r.Measured.MaxDepth,
			r.Measured.AvgDepth, r.Measured.DistinctTags, r.Measured.TextNodes, r.Measured.Elements)
		fmt.Fprintf(&sb, "%-10s %12d %12d %10d %10.1f %8d %12d %12d\n",
			"  (paper)", r.PaperSizeBytes, r.PaperTextBytes, r.PaperMaxDepth,
			r.PaperAvgDepth, r.PaperDistinctTags, r.PaperTextNodes, r.PaperElements)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

// Figure8Row is the structure/text ratio of every encoding variant for one
// dataset.
type Figure8Row struct {
	Dataset string
	// RatioPercent maps variant name -> structure/text ratio in percent.
	RatioPercent map[string]float64
	// StructureBytes maps variant name -> structure bytes.
	StructureBytes map[string]int64
}

// Figure8Result reproduces Figure 8 (index storage overhead).
type Figure8Result struct {
	Rows []Figure8Row
	// Paper values of the TCSBR ratio, for reference in reports.
	PaperTCSBR map[string]float64
}

// Figure8 measures the five encodings (NC, TC, TCS, TCSB, TCSBR) on the four
// datasets.
func Figure8(cfg Config) *Figure8Result {
	cfg = cfg.normalize()
	res := &Figure8Result{PaperTCSBR: map[string]float64{
		"WSU": 78, "Sigmod": 15, "Treebank": 23, "Hospital": 14,
	}}
	for _, spec := range dataset.Specs() {
		doc := spec.Generate(cfg.Scale)
		row := Figure8Row{
			Dataset:        spec.Name,
			RatioPercent:   map[string]float64{},
			StructureBytes: map[string]int64{},
		}
		for _, rep := range skipindex.MeasureAll(doc) {
			row.RatioPercent[rep.Variant.String()] = rep.StructureOverText
			row.StructureBytes[rep.Variant.String()] = rep.StructureBytes
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result as a text table.
func (f *Figure8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Index storage overhead (structure/text, %)\n")
	variants := []string{"NC", "TC", "TCS", "TCSB", "TCSBR"}
	fmt.Fprintf(&sb, "%-10s", "Dataset")
	for _, v := range variants {
		fmt.Fprintf(&sb, " %9s", v)
	}
	fmt.Fprintf(&sb, " %14s\n", "paper TCSBR")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-10s", r.Dataset)
		for _, v := range variants {
			fmt.Fprintf(&sb, " %9.0f", r.RatioPercent[v])
		}
		fmt.Fprintf(&sb, " %14.0f\n", f.PaperTCSBR[r.Dataset])
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Helpers shared by Figures 9-12
// ---------------------------------------------------------------------------

// hospitalProfiles returns the three access-control policies of the
// motivating example in the configuration the paper uses for Figure 9: the
// researcher is granted 10 protocols "to measure the impact of a rather
// complex access control policy".
func hospitalProfiles() map[string]*accessrule.Policy {
	return map[string]*accessrule.Policy{
		"Secretary":  accessrule.SecretaryPolicy(),
		"Doctor":     accessrule.DoctorPolicy(dataset.FullTimePhysician()),
		"Researcher": accessrule.ResearcherPolicy(accessrule.ResearcherGroups(10)...),
	}
}

// profileOrder keeps the rendering order stable.
var profileOrder = []string{"Secretary", "Doctor", "Researcher"}

// newHospitalWorkload builds the Hospital workload at the configured scale.
func newHospitalWorkload(cfg Config) (*soe.Workload, error) {
	doc := dataset.Hospital(cfg.Scale)
	return soe.NewWorkload("Hospital", doc, cfg.Key)
}
