package experiments

import (
	"fmt"
	"sort"
	"strings"

	"xmlac/internal/accessrule"
	"xmlac/internal/dataset"
	"xmlac/internal/secure"
	"xmlac/internal/soe"
	"xmlac/internal/xpath"
)

// ---------------------------------------------------------------------------
// Figure 9 — access control overhead
// ---------------------------------------------------------------------------

// Figure9Row holds the three strategies for one user profile.
type Figure9Row struct {
	Profile string
	// Seconds per strategy (BF, TCSBR, LWB), estimated under the configured
	// cost profile, without integrity checking (as in the paper).
	BFSeconds    float64
	TCSBRSeconds float64
	LWBSeconds   float64
	// Ratio of each strategy to LWB (the Y axis of Figure 9).
	BFOverLWB    float64
	TCSBROverLWB float64
	// Cost breakdown of the TCSBR run, in percent of its total.
	AccessControlPct float64
	CommunicationPct float64
	DecryptionPct    float64
	// ViewBytes is the size of the delivered authorized view.
	ViewBytes int64
}

// Figure9Result reproduces Figure 9.
type Figure9Result struct {
	Rows []Figure9Row
	// EncodedSize is the compressed document size the strategies process.
	EncodedSize int64
}

// Figure9 runs BF, TCSBR and LWB for the Secretary, Doctor and Researcher
// profiles on the Hospital document (integrity checking disabled, as in the
// paper's Figure 9).
func Figure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.normalize()
	w, err := newHospitalWorkload(cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{EncodedSize: w.EncodedSize()}
	policies := hospitalProfiles()
	for _, name := range profileOrder {
		policy := policies[name]
		row := Figure9Row{Profile: name}
		reports := map[soe.Strategy]*soe.Report{}
		for _, strat := range []soe.Strategy{soe.BruteForce, soe.SkipIndexStrategy, soe.LowerBound} {
			rep, err := w.Run(soe.RunSpec{
				Strategy: strat,
				Policy:   policy,
				Scheme:   secure.SchemeECB,
				Profile:  cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("figure 9 (%s/%s): %w", name, strat, err)
			}
			reports[strat] = rep
		}
		row.BFSeconds = reports[soe.BruteForce].Breakdown.Total()
		row.TCSBRSeconds = reports[soe.SkipIndexStrategy].Breakdown.Total()
		row.LWBSeconds = reports[soe.LowerBound].Breakdown.Total()
		if row.LWBSeconds > 0 {
			row.BFOverLWB = row.BFSeconds / row.LWBSeconds
			row.TCSBROverLWB = row.TCSBRSeconds / row.LWBSeconds
		}
		b := reports[soe.SkipIndexStrategy].Breakdown
		if total := b.Total(); total > 0 {
			row.AccessControlPct = 100 * b.AccessControlSeconds / total
			row.CommunicationPct = 100 * b.CommunicationSeconds / total
			row.DecryptionPct = 100 * b.DecryptionSeconds / total
		}
		row.ViewBytes = reports[soe.SkipIndexStrategy].ResultBytes
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result the way Figure 9 reports it.
func (f *Figure9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9. Access control overhead (Hospital document, no integrity)\n")
	fmt.Fprintf(&sb, "compressed document size: %d bytes\n", f.EncodedSize)
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %10s %12s %8s %8s %8s %10s\n",
		"Profile", "BF (s)", "TCSBR (s)", "LWB (s)", "BF/LWB", "TCSBR/LWB", "AC %", "Comm %", "Decr %", "view (B)")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-12s %10.2f %10.2f %10.2f %10.1f %12.2f %8.1f %8.1f %8.1f %10d\n",
			r.Profile, r.BFSeconds, r.TCSBRSeconds, r.LWBSeconds, r.BFOverLWB, r.TCSBROverLWB,
			r.AccessControlPct, r.CommunicationPct, r.DecryptionPct, r.ViewBytes)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 10 — impact of queries
// ---------------------------------------------------------------------------

// Figure10Point is one point of one series: the query //Folder[//Age>v] over
// one view.
type Figure10Point struct {
	AgeThreshold int
	ResultKB     float64
	Seconds      float64
}

// Figure10Series is the curve of one view (S, PTD, FTD, JR, SR).
type Figure10Series struct {
	View   string
	Points []Figure10Point
}

// Figure10Result reproduces Figure 10 (query execution time as a function of
// the query result size, for five views).
type Figure10Result struct {
	Series []Figure10Series
}

// Figure10 sweeps the selectivity of the query //Folder[//Age > v] over the
// five views of the paper: Secretary, part-time and full-time doctor, junior
// and senior researcher.
func Figure10(cfg Config) (*Figure10Result, error) {
	cfg = cfg.normalize()
	w, err := newHospitalWorkload(cfg)
	if err != nil {
		return nil, err
	}
	views := []struct {
		name   string
		policy *accessrule.Policy
	}{
		{"Sec", accessrule.SecretaryPolicy()},
		{"PTD", accessrule.DoctorPolicy(dataset.PartTimePhysician())},
		{"FTD", accessrule.DoctorPolicy(dataset.FullTimePhysician())},
		{"JR", accessrule.ResearcherPolicy(accessrule.ResearcherGroups(2)...)},
		{"SR", accessrule.ResearcherPolicy(accessrule.ResearcherGroups(10)...)},
	}
	thresholds := []int{95, 80, 65, 50, 35, 18}
	res := &Figure10Result{}
	for _, v := range views {
		series := Figure10Series{View: v.name}
		for _, age := range thresholds {
			q, err := xpath.Parse(fmt.Sprintf("//Folder[//Age>%d]", age))
			if err != nil {
				return nil, err
			}
			rep, err := w.Run(soe.RunSpec{
				Strategy: soe.SkipIndexStrategy,
				Policy:   v.policy,
				Query:    q,
				Scheme:   secure.SchemeECB,
				Profile:  cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("figure 10 (%s, age>%d): %w", v.name, age, err)
			}
			series.Points = append(series.Points, Figure10Point{
				AgeThreshold: age,
				ResultKB:     float64(rep.ResultBytes) / 1024,
				Seconds:      rep.Breakdown.Total(),
			})
		}
		sort.Slice(series.Points, func(i, j int) bool { return series.Points[i].ResultKB < series.Points[j].ResultKB })
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render formats the result as one line per (view, threshold) point.
func (f *Figure10Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 10. Impact of queries (//Folder[//Age>v], TCSBR, no integrity)\n")
	fmt.Fprintf(&sb, "%-6s %12s %14s %12s\n", "View", "Age > v", "result (KB)", "time (s)")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%-6s %12d %14.1f %12.2f\n", s.View, p.AgeThreshold, p.ResultKB, p.Seconds)
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 11 — integrity control
// ---------------------------------------------------------------------------

// Figure11Row holds, for one user profile, the execution time under each
// encryption/integrity scheme.
type Figure11Row struct {
	Profile string
	// Seconds maps scheme name -> estimated execution time.
	Seconds map[string]float64
}

// Figure11Result reproduces Figure 11.
type Figure11Result struct {
	Rows []Figure11Row
}

// Figure11 evaluates the three Hospital profiles under the four schemes
// (ECB, CBC-SHA, CBC-SHAC, ECB-MHT) with the TCSBR strategy.
func Figure11(cfg Config) (*Figure11Result, error) {
	cfg = cfg.normalize()
	w, err := newHospitalWorkload(cfg)
	if err != nil {
		return nil, err
	}
	policies := hospitalProfiles()
	res := &Figure11Result{}
	for _, name := range profileOrder {
		row := Figure11Row{Profile: name, Seconds: map[string]float64{}}
		for _, scheme := range secure.Schemes() {
			rep, err := w.Run(soe.RunSpec{
				Strategy: soe.SkipIndexStrategy,
				Policy:   policies[name],
				Scheme:   scheme,
				Profile:  cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("figure 11 (%s/%s): %w", name, scheme, err)
			}
			row.Seconds[scheme.String()] = rep.Breakdown.Total()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the Figure 11 histogram.
func (f *Figure11Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 11. Impact of integrity control (Hospital document, TCSBR)\n")
	schemes := []string{"ECB", "CBC-SHA", "CBC-SHAC", "ECB-MHT"}
	fmt.Fprintf(&sb, "%-12s", "Profile")
	for _, s := range schemes {
		fmt.Fprintf(&sb, " %12s", s+" (s)")
	}
	sb.WriteString("\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-12s", r.Profile)
		for _, s := range schemes {
			fmt.Fprintf(&sb, " %12.2f", r.Seconds[s])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 12 — performance on real datasets
// ---------------------------------------------------------------------------

// Figure12Row is the throughput of one workload (dataset or Hospital
// profile) under TCSBR and LWB, with and without integrity.
type Figure12Row struct {
	Workload string
	// ThroughputKBps maps series name -> KB/s: "TCSBR-Integrity",
	// "LWB-Integrity", "TCSBR-NoIntegrity", "LWB-NoIntegrity".
	ThroughputKBps map[string]float64
	// ViewFraction is the fraction of the document delivered by the policy.
	ViewFraction float64
}

// Figure12Result reproduces Figure 12.
type Figure12Result struct {
	Rows []Figure12Row
}

// Figure12 evaluates the three "real" datasets under random access-control
// policies (including // and predicates, as in the paper) plus the three
// Hospital profiles, reporting the estimated throughput of TCSBR and LWB
// with and without integrity checking.
func Figure12(cfg Config) (*Figure12Result, error) {
	cfg = cfg.normalize()
	res := &Figure12Result{}

	type workloadSpec struct {
		name   string
		w      *soe.Workload
		policy *accessrule.Policy
	}
	var specs []workloadSpec

	// Real datasets with random policies (Sigmod gets a simple, weakly
	// selective policy; Treebank a complex 8-rule one, as described in the
	// paper).
	for _, ds := range []struct {
		name  string
		rules int
		seed  uint64
	}{
		{"Sigmod", 3, 41},
		{"WSU", 5, 43},
		{"Treebank", 8, 47},
	} {
		spec, err := dataset.SpecByName(ds.name)
		if err != nil {
			return nil, err
		}
		doc := spec.Generate(cfg.Scale)
		w, err := soe.NewWorkload(ds.name, doc, cfg.Key)
		if err != nil {
			return nil, err
		}
		specs = append(specs, workloadSpec{ds.name, w, dataset.RandomPolicy(doc, ds.rules, ds.seed)})
	}
	// Hospital profiles.
	hw, err := newHospitalWorkload(cfg)
	if err != nil {
		return nil, err
	}
	policies := hospitalProfiles()
	for _, name := range profileOrder {
		specs = append(specs, workloadSpec{"Hosp-" + name, hw, policies[name]})
	}

	for _, s := range specs {
		row := Figure12Row{Workload: s.name, ThroughputKBps: map[string]float64{}}
		for _, variant := range []struct {
			label    string
			strategy soe.Strategy
			scheme   secure.Scheme
		}{
			{"TCSBR-Integrity", soe.SkipIndexStrategy, secure.SchemeECBMHT},
			{"LWB-Integrity", soe.LowerBound, secure.SchemeECBMHT},
			{"TCSBR-NoIntegrity", soe.SkipIndexStrategy, secure.SchemeECB},
			{"LWB-NoIntegrity", soe.LowerBound, secure.SchemeECB},
		} {
			rep, err := s.w.Run(soe.RunSpec{
				Strategy: variant.strategy,
				Policy:   s.policy,
				Scheme:   variant.scheme,
				Profile:  cfg.Profile,
			})
			if err != nil {
				return nil, fmt.Errorf("figure 12 (%s/%s): %w", s.name, variant.label, err)
			}
			row.ThroughputKBps[variant.label] = rep.Throughput(s.w.EncodedSize())
			if variant.label == "TCSBR-NoIntegrity" && s.w.EncodedSize() > 0 {
				row.ViewFraction = float64(rep.ResultBytes) / float64(s.w.EncodedSize())
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the Figure 12 histogram.
func (f *Figure12Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 12. Performance on real datasets (throughput, KB/s of compressed document)\n")
	series := []string{"TCSBR-Integrity", "LWB-Integrity", "TCSBR-NoIntegrity", "LWB-NoIntegrity"}
	fmt.Fprintf(&sb, "%-16s", "Workload")
	for _, s := range series {
		fmt.Fprintf(&sb, " %18s", s)
	}
	fmt.Fprintf(&sb, " %10s\n", "view frac")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-16s", r.Workload)
		for _, s := range series {
			fmt.Fprintf(&sb, " %18.1f", r.ThroughputKBps[s])
		}
		fmt.Fprintf(&sb, " %10.2f\n", r.ViewFraction)
	}
	return sb.String()
}
