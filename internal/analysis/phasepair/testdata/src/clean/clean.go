// Package clean is the negative case: every Begin/End idiom the module
// actually uses, which the analyzer must accept without diagnostics.
package clean

import (
	"errors"

	"vettest/trace"
)

func deferredEnd(tr *trace.Context) error {
	tr.Begin(trace.PhaseFetch)
	defer tr.End()
	if err := work(); err != nil {
		return err
	}
	return nil
}

func straightLinePair(tr *trace.Context) error {
	tr.Begin(trace.PhaseHashFetch)
	err := work()
	tr.End()
	if err != nil {
		return err
	}
	return nil
}

func endOnBothBranches(tr *trace.Context, fast bool) {
	tr.Begin(trace.PhaseDecode)
	if fast {
		tr.End()
	} else {
		tr.End()
	}
}

func endBeforeEveryReturn(tr *trace.Context, n int) int {
	tr.Begin(trace.PhaseEval)
	if n < 0 {
		tr.End()
		return 0
	}
	tr.End()
	return n
}

func pairPerIteration(tr *trace.Context, chunks []int) {
	for range chunks {
		tr.Begin(trace.PhaseDecrypt)
		tr.End()
	}
}

func switchBalanced(tr *trace.Context, kind int) error {
	tr.Begin(trace.PhaseEval)
	var err error
	switch kind {
	case 0:
		err = work()
	case 1:
		err = nil
	default:
		err = errors.New("unknown kind")
	}
	tr.End()
	return err
}

func nestedPhases(tr *trace.Context) {
	tr.Begin(trace.PhaseDecode)
	tr.Begin(trace.PhaseDecrypt)
	tr.End()
	tr.End()
}

func deferredClosure(tr *trace.Context) {
	tr.Begin(trace.PhaseResync)
	defer func() {
		tr.End()
	}()
	_ = work()
}

func panicTerminates(tr *trace.Context, ok bool) {
	tr.Begin(trace.PhaseEmit)
	if !ok {
		panic("invariant broken")
	}
	tr.End()
}

func work() error { return nil }
