// Package trace mimics the xmlac/internal/trace contract for the golden
// tests (the real package is internal to the xmlac module and cannot be
// imported from the test module): a phase-stack Context whose exported
// methods must all be nil-receiver-safe. The analyzer is configured with
// this type for both the pairing and the nil-safety checks.
package trace

// Phase identifies one pipeline phase.
type Phase int

// Phase constants used by the golden packages.
const (
	PhaseDecrypt Phase = iota
	PhaseVerify
	PhaseHashFetch
	PhaseDecode
	PhaseSkip
	PhaseEval
	PhaseEmit
	PhaseFetch
	PhaseResync
)

// Context is the per-evaluation phase stack.
type Context struct {
	id    string
	stack []Phase
	count int64
}

// Begin pushes a phase (guarded, like the real Context).
func (c *Context) Begin(p Phase) {
	if c == nil {
		return
	}
	c.stack = append(c.stack, p)
}

// End pops the current phase (guarded with a compound condition).
func (c *Context) End() {
	if c == nil || len(c.stack) == 0 {
		return
	}
	c.stack = c.stack[:len(c.stack)-1]
}

// ID is guarded correctly.
func (c *Context) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// Bump is missing the guard.
func (c *Context) Bump() { // want `exported method Bump of nil-safe type Context must begin with a nil-receiver guard`
	c.count++
}

// Snapshot uses a value receiver: calling it on the nil pointer the
// disabled pipeline threads through panics before the body runs.
func (c Context) Snapshot() int64 { // want `exported method Snapshot of nil-safe type Context must use a pointer receiver`
	return c.count
}

// reset is unexported: internal call sites hold non-nil receivers.
func (c *Context) reset() {
	c.count = 0
}
