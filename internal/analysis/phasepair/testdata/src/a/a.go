// Package a seeds the phase-pairing diagnostics against a context type
// mirroring xmlac/internal/trace.Context (the real package is internal to
// the xmlac module; the analyzer is configured with both type names).
package a

import (
	"errors"

	"vettest/trace"
)

func returnWithOpenPhase(tr *trace.Context, fail bool) error {
	tr.Begin(trace.PhaseDecode)
	if fail {
		return errors.New("bad header") // want `return leaves 1 trace phase\(s\) open`
	}
	tr.End()
	return nil
}

func fallsOffTheEnd(tr *trace.Context) {
	tr.Begin(trace.PhaseEval)
	tr.Begin(trace.PhaseEmit)
	tr.End()
} // want `function ends with 1 trace phase\(s\) still open`

func endWithoutBegin(tr *trace.Context) {
	tr.End() // want `End without a matching Begin on this path`
}

func branchImbalance(tr *trace.Context, quick bool) {
	tr.Begin(trace.PhaseSkip)
	if quick { // want `trace phase balance differs across branches`
		tr.End()
	}
	tr.End()
}

func loopImbalance(tr *trace.Context, chunks []int) {
	for range chunks { // want `loop body changes the number of open trace phases by 1 per iteration`
		tr.Begin(trace.PhaseDecrypt)
	}
}

func breakWithOpenPhase(tr *trace.Context, chunks []int) {
	for _, c := range chunks {
		tr.Begin(trace.PhaseVerify)
		if c == 0 {
			break // want `break leaves 1 trace phase\(s\) open relative to loop entry`
		}
		tr.End()
	}
}
