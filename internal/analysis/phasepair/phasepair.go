// Package phasepair proves two invariants of the tracing layer:
//
//  1. Every trace.Context phase Begin has a matching End on every return
//     path. An unpaired Begin corrupts the exclusive-time phase stack for
//     the rest of the evaluation — all later time is charged to the wrong
//     phase — and, unlike a panic, never crashes, so only a vet-time check
//     catches it reliably.
//
//  2. The configured trace types stay nil-receiver-safe: the disabled
//     pipeline threads a nil *trace.Context through every layer, so every
//     exported method must use a pointer receiver and begin with a
//     nil-receiver guard.
//
// The pairing check is a structural walk, not a full CFG: along every
// statement path it tracks how many phases are open and how many deferred
// Ends are registered, requiring branches that rejoin to agree and
// returns to leave no phase uncovered. Functions using goto are skipped
// (none in this module).
package phasepair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xmlac/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// ContextTypes are fully-qualified names ("pkgpath.Type") of phase
	// trace context types: Begin/End pairing is enforced on their methods'
	// call sites, and nil-receiver safety on their method declarations.
	ContextTypes []string
}

// DefaultConfig covers the module's tracing core.
func DefaultConfig() Config {
	return Config{ContextTypes: []string{"xmlac/internal/trace.Context"}}
}

// New returns the phasepair analyzer.
func New(cfg Config) *analysis.Analyzer {
	if len(cfg.ContextTypes) == 0 {
		cfg = DefaultConfig()
	}
	return &analysis.Analyzer{
		Name: "phasepair",
		Doc:  "trace phase Begins must pair with Ends on all paths; trace types must stay nil-receiver-safe",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

func run(pass *analysis.Pass, cfg Config) {
	ctxTypes := map[string]bool{}
	for _, t := range cfg.ContextTypes {
		ctxTypes[t] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Recv != nil {
				checkNilSafety(pass, fn, ctxTypes)
			}
			if fn.Body != nil {
				checkFunc(pass, fn.Body, ctxTypes)
			}
		}
	}
}

// --- pairing ---

type pairWalker struct {
	pass     *analysis.Pass
	ctxTypes map[string]bool
	// loopOpens is the stack of open-phase counts at entry of each
	// enclosing loop; break/continue must not carry extra open phases out
	// of or around the loop body.
	loopOpens []int
	bail      bool // goto seen: give up on this function
}

// checkFunc analyzes one function body (FuncDecl or FuncLit).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, ctxTypes map[string]bool) {
	w := &pairWalker{pass: pass, ctxTypes: ctxTypes}
	opens, defers, terminated := w.walkStmts(body.List, 0, 0)
	if w.bail {
		return
	}
	if !terminated && opens > defers {
		pass.Reportf(body.Rbrace,
			"function ends with %d trace phase(s) still open: Begin without a matching End", opens-defers)
	}
}

// walkStmts walks a statement list, returning the open-phase and
// deferred-End counts at its end and whether the list always terminates
// (return/panic) before falling through.
func (w *pairWalker) walkStmts(stmts []ast.Stmt, opens, defers int) (int, int, bool) {
	for _, stmt := range stmts {
		var terminated bool
		opens, defers, terminated = w.walkStmt(stmt, opens, defers)
		if w.bail {
			return opens, defers, false
		}
		if terminated {
			return opens, defers, true
		}
	}
	return opens, defers, false
}

func (w *pairWalker) walkStmt(stmt ast.Stmt, opens, defers int) (int, int, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.scanFuncLits(s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			switch {
			case w.isPhaseCall(call, "Begin"):
				return opens + 1, defers, false
			case w.isPhaseCall(call, "End"):
				if opens == 0 && defers == 0 {
					w.pass.Reportf(call.Pos(), "End without a matching Begin on this path")
					return opens, defers, false
				}
				if opens == 0 {
					// End after only deferred Ends: the deferred End will
					// pop a phase this path never began.
					w.pass.Reportf(call.Pos(), "End already covered by a deferred End on this path")
					return opens, defers, false
				}
				return opens - 1, defers, false
			case isTerminatorCall(w.pass, call):
				return opens, defers, true
			}
		}
		return opens, defers, false
	case *ast.DeferStmt:
		if w.isPhaseCall(s.Call, "End") {
			return opens, defers + 1, false
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A deferred closure's End calls close phases of the enclosing
			// function, so they count as deferred Ends here and the body
			// is not re-checked as an independent function.
			return opens, defers + w.countEnds(lit.Body), false
		}
		w.scanFuncLits(s.Call)
		return opens, defers, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanFuncLits(r)
		}
		if opens > defers {
			w.pass.Reportf(s.Pos(),
				"return leaves %d trace phase(s) open: Begin without End on this path", opens-defers)
		}
		return opens, defers, true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			w.bail = true
		case token.BREAK, token.CONTINUE:
			if n := len(w.loopOpens); n > 0 && opens != w.loopOpens[n-1] {
				w.pass.Reportf(s.Pos(),
					"%s leaves %d trace phase(s) open relative to loop entry", s.Tok, opens-w.loopOpens[n-1])
			}
		}
		return opens, defers, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, opens, defers)
	case *ast.IfStmt:
		if s.Init != nil {
			opens, defers, _ = w.walkStmt(s.Init, opens, defers)
		}
		w.scanFuncLits(s.Cond)
		branches := [][2]int{}
		bodyOpens, bodyDefers, bodyTerm := w.walkStmts(s.Body.List, opens, defers)
		if !bodyTerm {
			branches = append(branches, [2]int{bodyOpens, bodyDefers})
		}
		if s.Else != nil {
			elseOpens, elseDefers, elseTerm := w.walkStmt(s.Else, opens, defers)
			if !elseTerm {
				branches = append(branches, [2]int{elseOpens, elseDefers})
			}
		} else {
			branches = append(branches, [2]int{opens, defers})
		}
		return w.join(s.Pos(), branches, opens, defers)
	case *ast.ForStmt:
		if s.Init != nil {
			opens, defers, _ = w.walkStmt(s.Init, opens, defers)
		}
		w.walkLoopBody(s.Body, opens, defers)
		return opens, defers, false
	case *ast.RangeStmt:
		w.scanFuncLits(s.X)
		w.walkLoopBody(s.Body, opens, defers)
		return opens, defers, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(stmt, opens, defers)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, opens, defers)
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			checkFunc(w.pass, lit.Body, w.ctxTypes)
		}
		w.scanFuncLits(s.Call)
		return opens, defers, false
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(w.pass, lit.Body, w.ctxTypes)
				return false
			}
			return true
		})
		return opens, defers, false
	}
}

// walkLoopBody checks that one loop iteration is balanced.
func (w *pairWalker) walkLoopBody(body *ast.BlockStmt, opens, defers int) {
	w.loopOpens = append(w.loopOpens, opens)
	endOpens, _, term := w.walkStmts(body.List, opens, defers)
	w.loopOpens = w.loopOpens[:len(w.loopOpens)-1]
	if w.bail || term {
		return
	}
	if endOpens != opens {
		w.pass.Reportf(body.Pos(),
			"loop body changes the number of open trace phases by %d per iteration", endOpens-opens)
	}
}

// walkCases joins the clause bodies of a switch/type-switch/select.
func (w *pairWalker) walkCases(stmt ast.Stmt, opens, defers int) (int, int, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			opens, defers, _ = w.walkStmt(s.Init, opens, defers)
		}
		w.scanFuncLits(s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			opens, defers, _ = w.walkStmt(s.Init, opens, defers)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	branches := [][2]int{}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				opens, defers, _ = w.walkStmt(c.Comm, opens, defers)
			}
			stmts = c.Body
		}
		o, d, term := w.walkStmts(stmts, opens, defers)
		if !term {
			branches = append(branches, [2]int{o, d})
		}
	}
	if _, isSelect := stmt.(*ast.SelectStmt); !hasDefault && !isSelect {
		branches = append(branches, [2]int{opens, defers})
	}
	return w.join(stmt.Pos(), branches, opens, defers)
}

// join reconciles the non-terminating branches of a control-flow fork: all
// must agree on the open/deferred counts, or the phase stack depends on
// which branch ran.
func (w *pairWalker) join(pos token.Pos, branches [][2]int, opens, defers int) (int, int, bool) {
	if len(branches) == 0 {
		return opens, defers, true // every branch returned
	}
	first := branches[0]
	for _, b := range branches[1:] {
		if b != first {
			w.pass.Reportf(pos,
				"trace phase balance differs across branches (one path leaves a Begin/End unpaired)")
			// Resume from the fork-entry counts so one imbalance does not
			// cascade into follow-on diagnostics.
			return opens, defers, false
		}
	}
	return first[0], first[1], false
}

// countEnds counts End calls on context types inside a deferred closure.
func (w *pairWalker) countEnds(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok && w.isPhaseCall(call, "End") {
			n++
		}
		return true
	})
	return n
}

// scanFuncLits checks function literals nested in an expression as
// independent functions.
func (w *pairWalker) scanFuncLits(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(w.pass, lit.Body, w.ctxTypes)
			return false
		}
		return true
	})
}

// isPhaseCall reports whether call is recv.<name>(...) on a configured
// context type.
func (w *pairWalker) isPhaseCall(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return w.ctxTypes[qualifiedTypeName(sig.Recv().Type())]
}

// isTerminatorCall recognizes calls that never return: panic and the
// conventional fatal exits.
func isTerminatorCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() + "." + obj.Name() {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// --- nil-receiver safety ---

// checkNilSafety enforces, for methods of configured context types defined
// in the analyzed package: exported methods use a pointer receiver and
// begin with a nil-receiver guard.
func checkNilSafety(pass *analysis.Pass, fn *ast.FuncDecl, ctxTypes map[string]bool) {
	if !fn.Name.IsExported() || fn.Body == nil {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return
	}
	recvType := recv.Type()
	ptr, isPtr := recvType.(*types.Pointer)
	base := recvType
	if isPtr {
		base = ptr.Elem()
	}
	if !ctxTypes[qualifiedTypeName(base)] {
		return
	}
	if !isPtr {
		pass.Reportf(fn.Name.Pos(),
			"exported method %s of nil-safe type %s must use a pointer receiver (a value receiver panics on the nil *%s the disabled pipeline threads through)",
			fn.Name.Name, typeName(base), typeName(base))
		return
	}
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		// Unnamed receiver: the body cannot dereference it.
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if recvName == "_" || hasNilGuard(fn.Body, recvName) {
		return
	}
	pass.Reportf(fn.Name.Pos(),
		"exported method %s of nil-safe type %s must begin with a nil-receiver guard (if %s == nil { return ... })",
		fn.Name.Name, typeName(base), recvName)
}

// hasNilGuard reports whether the body's first statement is an if whose
// condition contains `recv == nil` and whose body returns.
func hasNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // empty body cannot dereference
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || !condChecksNil(ifStmt.Cond, recvName) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

// condChecksNil looks for `recv == nil` anywhere in a (possibly ||-joined)
// condition.
func condChecksNil(cond ast.Expr, recvName string) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if b.Op == token.LOR {
		return condChecksNil(b.X, recvName) || condChecksNil(b.Y, recvName)
	}
	if b.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recvName
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(b.X) && isNil(b.Y)) || (isRecv(b.Y) && isNil(b.X))
}

// qualifiedTypeName renders "pkgpath.Type" for a (possibly pointer) named
// type.
func qualifiedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// typeName is the bare type name of a qualified type.
func typeName(t types.Type) string {
	q := qualifiedTypeName(t)
	if i := strings.LastIndex(q, "."); i >= 0 {
		return q[i+1:]
	}
	return q
}
