package phasepair_test

import (
	"testing"

	"xmlac/internal/analysis/analysistest"
	"xmlac/internal/analysis/phasepair"
)

func testConfig() phasepair.Config {
	return phasepair.Config{ContextTypes: []string{
		"xmlac/internal/trace.Context",
		"vettest/trace.Context",
	}}
}

func TestSeededPairingViolations(t *testing.T) {
	analysistest.Run(t, phasepair.New(testConfig()), "testdata", "a")
}

func TestSeededNilSafetyViolations(t *testing.T) {
	analysistest.Run(t, phasepair.New(testConfig()), "testdata", "trace")
}

func TestCleanCode(t *testing.T) {
	analysistest.Run(t, phasepair.New(testConfig()), "testdata", "clean")
}
