package vetcfg

import (
	"strings"
	"testing"
)

const sample = `
# review rule: every entry needs a reason.
[trustboundary]
packages = ["xmlac/internal/server", "xmlac/cmd/xmlac-serve"]
deny_imports = ["xmlac/internal/secure"]
deny_symbols = ["xmlac.DeriveKey", "xmlac.Protected.AuthorizedView"]

[[allow]]
analyzer = "trustboundary"
path = "internal/server/store.go"
match = "xmlac.DeriveKey"
reason = "trusted-deployment demo registration"

[[allow]]
analyzer = "errlink"
path = "internal/remote/source.go"
reason = "message-only rendering is intentional here"
`

func TestParse(t *testing.T) {
	cfg, err := Parse(sample, "test.toml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tb := cfg.Trustboundary
	if len(tb.Packages) != 2 || tb.Packages[1] != "xmlac/cmd/xmlac-serve" {
		t.Errorf("packages = %v", tb.Packages)
	}
	if len(tb.DenyImports) != 1 || tb.DenyImports[0] != "xmlac/internal/secure" {
		t.Errorf("deny_imports = %v", tb.DenyImports)
	}
	if len(tb.DenySymbols) != 2 || tb.DenySymbols[1] != "xmlac.Protected.AuthorizedView" {
		t.Errorf("deny_symbols = %v", tb.DenySymbols)
	}
	if len(cfg.Allow) != 2 {
		t.Fatalf("allow entries = %d, want 2", len(cfg.Allow))
	}

	a := &cfg.Allow[0]
	if !a.Matches("trustboundary", "internal/server/store.go", "use of denied symbol xmlac.DeriveKey") {
		t.Errorf("entry 0 should match")
	}
	if a.Matches("trustboundary", "internal/server/cache.go", "use of denied symbol xmlac.DeriveKey") {
		t.Errorf("entry 0 must not match a different file")
	}
	if a.Matches("keytaint", "internal/server/store.go", "use of denied symbol xmlac.DeriveKey") {
		t.Errorf("entry 0 must not match a different analyzer")
	}
	if !a.Used() {
		t.Errorf("entry 0 should be marked used")
	}

	// Empty match matches any message of that analyzer+file.
	b := &cfg.Allow[1]
	if !b.Matches("errlink", "internal/remote/source.go", "anything at all") {
		t.Errorf("entry 1 should match any message")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"missing reason", "[[allow]]\nanalyzer = \"x\"\npath = \"y\"\n", "needs a reason"},
		{"missing path", "[[allow]]\nanalyzer = \"x\"\nreason = \"r\"\n", "analyzer and path"},
		{"unknown table", "[nope]\n", "unknown table"},
		{"unknown key", "[trustboundary]\nnope = [\"a\"]\n", "unknown key"},
		{"key outside table", "x = \"y\"\n", "outside any table"},
		{"bad array", "[trustboundary]\npackages = \"a\"\n", "expected"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, "t.toml"); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	cfg, err := Load("/nonexistent/.xmlac-vet.toml")
	if err != nil {
		t.Fatalf("Load of a missing file must not error: %v", err)
	}
	if len(cfg.Allow) != 0 {
		t.Errorf("missing file must yield an empty baseline")
	}
}
