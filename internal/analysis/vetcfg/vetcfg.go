// Package vetcfg reads .xmlac-vet.toml: the trust-boundary deny lists and
// the committed baseline of intentionally-allowed findings. The parser is a
// deliberately small TOML subset (tables, array-of-table blocks, string and
// string-array values, # comments) — enough for a reviewed, diffable config
// file without pulling in a TOML dependency.
package vetcfg

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DefaultFile is the config/baseline file name, looked up at the module
// root.
const DefaultFile = ".xmlac-vet.toml"

// Config is the parsed .xmlac-vet.toml.
type Config struct {
	// Trustboundary configures the trustboundary analyzer.
	Trustboundary Trustboundary
	// Allow is the committed baseline: findings matching an entry are
	// reported as allowed instead of failing the run.
	Allow []Allow
}

// Trustboundary is the config of the trustboundary analyzer: which
// packages form the untrusted surface and which imports/symbols they must
// never reach.
type Trustboundary struct {
	// Packages are import-path prefixes of the untrusted surface
	// (internal/server, cmd/xmlac-serve).
	Packages []string
	// DenyImports are import-path prefixes those packages must not import
	// directly (the client-side engine internals).
	DenyImports []string
	// DenySymbols are fully-qualified symbols ("pkgpath.Name" or
	// "pkgpath.Type.Name") those packages must not reference: decrypt,
	// evaluator and key-handling entry points.
	DenySymbols []string
}

// Allow is one baseline entry. A finding is suppressed when the analyzer
// matches, the module-relative file path matches, and Match (if non-empty)
// is a substring of the message.
type Allow struct {
	Analyzer string
	Path     string
	Match    string
	Reason   string
	// used is set when a finding matched this entry during filtering.
	used bool
}

// Load reads and parses the config file. A missing file yields the zero
// Config and no error: the tool then runs with built-in defaults and an
// empty baseline.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Config{}, nil
	}
	if err != nil {
		return nil, err
	}
	return Parse(string(data), path)
}

// Parse parses the TOML subset. name is used in error messages only.
func Parse(src, name string) (*Config, error) {
	cfg := &Config{}
	section := ""
	var cur *Allow
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineno+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "[["):
			sec := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
			if sec != "allow" {
				return nil, fail("unknown array-of-tables [[%s]] (only [[allow]] is supported)", sec)
			}
			cfg.Allow = append(cfg.Allow, Allow{})
			cur = &cfg.Allow[len(cfg.Allow)-1]
			section = "allow"
		case strings.HasPrefix(line, "["):
			sec := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
			if sec != "trustboundary" {
				return nil, fail("unknown table [%s] (only [trustboundary] and [[allow]] are supported)", sec)
			}
			section = sec
			cur = nil
		default:
			key, val, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fail("expected key = value")
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch section {
			case "trustboundary":
				list, err := parseStringArray(val)
				if err != nil {
					return nil, fail("value for %s: %v", key, err)
				}
				switch key {
				case "packages":
					cfg.Trustboundary.Packages = list
				case "deny_imports":
					cfg.Trustboundary.DenyImports = list
				case "deny_symbols":
					cfg.Trustboundary.DenySymbols = list
				default:
					return nil, fail("unknown key %q in [trustboundary]", key)
				}
			case "allow":
				s, err := parseString(val)
				if err != nil {
					return nil, fail("value for %s: %v", key, err)
				}
				switch key {
				case "analyzer":
					cur.Analyzer = s
				case "path":
					cur.Path = s
				case "match":
					cur.Match = s
				case "reason":
					cur.Reason = s
				default:
					return nil, fail("unknown key %q in [[allow]]", key)
				}
			default:
				return nil, fail("key %q outside any table", key)
			}
		}
	}
	for i, a := range cfg.Allow {
		if a.Analyzer == "" || a.Path == "" {
			return nil, fmt.Errorf("%s: [[allow]] entry %d needs both analyzer and path", name, i+1)
		}
		if a.Reason == "" {
			return nil, fmt.Errorf("%s: [[allow]] entry %d (%s %s) needs a reason — the review rule requires one", name, i+1, a.Analyzer, a.Path)
		}
	}
	return cfg, nil
}

// parseString parses one double-quoted TOML basic string.
func parseString(val string) (string, error) {
	s, err := strconv.Unquote(val)
	if err != nil {
		return "", fmt.Errorf("expected a %q-quoted string, got %s", '"', val)
	}
	return s, nil
}

// parseStringArray parses a single-line ["a", "b"] array (empty allowed).
func parseStringArray(val string) ([]string, error) {
	if !strings.HasPrefix(val, "[") || !strings.HasSuffix(val, "]") {
		return nil, fmt.Errorf("expected [\"...\", ...], got %s", val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return nil, nil
	}
	var out []string
	for _, part := range splitTopLevel(inner) {
		s, err := parseString(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// splitTopLevel splits on commas outside quoted strings.
func splitTopLevel(s string) []string {
	var parts []string
	depth := false // inside a quoted string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !depth {
				depth = true
			} else if i == 0 || s[i-1] != '\\' {
				depth = false
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// Matches reports whether the entry suppresses a finding of the given
// analyzer at the module-relative path with the given message, marking the
// entry used.
func (a *Allow) Matches(analyzer, relPath, message string) bool {
	if a.Analyzer != analyzer || filepath.ToSlash(relPath) != filepath.ToSlash(a.Path) {
		return false
	}
	if a.Match != "" && !strings.Contains(message, a.Match) {
		return false
	}
	a.used = true
	return true
}

// Used reports whether any finding matched the entry.
func (a *Allow) Used() bool { return a.used }
