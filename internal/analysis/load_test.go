package analysis

import (
	"go/token"
	"testing"
)

// TestLoadModule loads this module and checks the loader produces parsed,
// type-checked packages in dependency order with working type information
// across package boundaries (the property every analyzer relies on).
func TestLoadModule(t *testing.T) {
	pkgs, err := Load(".", "xmlac/internal/trace", "xmlac/internal/secure")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	tr, ok := byPath["xmlac/internal/trace"]
	if !ok {
		t.Fatalf("xmlac/internal/trace not loaded; got %v", keys(byPath))
	}
	if tr.Types.Scope().Lookup("Context") == nil {
		t.Errorf("trace.Context not found in type info")
	}
	sec, ok := byPath["xmlac/internal/secure"]
	if !ok {
		t.Fatalf("xmlac/internal/secure not loaded; got %v", keys(byPath))
	}
	if sec.Types.Scope().Lookup("Key") == nil {
		t.Errorf("secure.Key not found in type info")
	}
	// Type info must be populated: every package-scope object has a
	// position inside one of the parsed files.
	if len(sec.Info.Defs) == 0 || len(sec.Info.Uses) == 0 {
		t.Errorf("type info maps empty: Defs=%d Uses=%d", len(sec.Info.Defs), len(sec.Info.Uses))
	}
	if pos := sec.Fset.Position(sec.Types.Scope().Lookup("Key").Pos()); pos == (token.Position{}) {
		t.Errorf("secure.Key has no position")
	}
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
