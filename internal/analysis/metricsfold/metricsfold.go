// Package metricsfold turns the Metrics.Add reflection test into a
// compile-time check: every accumulator method of the shape
//
//	func (m *T) Add(o *T) // or Add(o T)
//
// on a struct type T must fold every field of T — a counter added to the
// struct without extending Add (as Metrics.BytesOnWire once was) is
// silently dropped by every aggregator. A field counts as folded when one
// statement of the body both writes recv.F (assignment or method call on
// the field, e.g. m.F += o.F or m.F.Add(&o.F)) and reads param.F; nested
// accumulators (Metrics.PhaseBreakdown) are covered transitively because
// their own Add methods match the same shape and are checked wherever they
// live.
package metricsfold

import (
	"go/ast"
	"go/types"

	"xmlac/internal/analysis"
)

// New returns the metricsfold analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "metricsfold",
		Doc:  "accumulator Add methods must fold every field of their struct",
		Run: func(pass *analysis.Pass) error {
			run(pass)
			return nil
		},
	}
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Add" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			checkAdd(pass, fn)
		}
	}
}

func checkAdd(pass *analysis.Pass, fn *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil || sig.Params().Len() != 1 {
		return
	}
	recvNamed, st := namedStruct(recv.Type())
	if recvNamed == nil {
		return
	}
	paramNamed, _ := namedStruct(sig.Params().At(0).Type())
	if paramNamed != recvNamed {
		return // Add of something else (accessrule.Policy.Add appends a Rule)
	}
	recvVar, paramVar := receiverObj(pass, fn), paramObj(pass, fn)
	if recvVar == nil || paramVar == nil {
		return
	}

	folded := map[string]bool{}
	for _, stmt := range fn.Body.List {
		writes := map[string]bool{}
		reads := map[string]bool{}
		collectFieldUses(pass, stmt, recvVar, paramVar, writes, reads)
		for f := range writes {
			if reads[f] {
				folded[f] = true
			}
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !folded[f.Name()] {
			pass.Reportf(fn.Name.Pos(),
				"%s.Add does not fold field %s: aggregators will silently drop it", recvNamed.Obj().Name(), f.Name())
		}
	}
}

// collectFieldUses records, for one statement, which first-level fields of
// the receiver are written (assigned to, or used as the receiver of a
// method call) and which fields of the parameter are read.
func collectFieldUses(pass *analysis.Pass, stmt ast.Stmt, recvVar, paramVar types.Object, writes, reads map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := baseField(pass, lhs, recvVar); f != "" {
					writes[f] = true
				}
			}
		case *ast.CallExpr:
			// m.F.Add(...) — a method call whose receiver chain roots at
			// the receiver counts as a write to the base field.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if f := baseField(pass, sel.X, recvVar); f != "" {
					writes[f] = true
				}
			}
		case *ast.SelectorExpr:
			if f := baseField(pass, n, paramVar); f != "" {
				reads[f] = true
			}
		}
		return true
	})
}

// baseField returns the first-level field name when expr is a selector
// chain rooted at root (root.F, root.F.G, (&root.F), *root.F ...).
func baseField(pass *analysis.Pass, expr ast.Expr, root types.Object) string {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == root {
				return e.Sel.Name
			}
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return ""
		}
	}
}

// namedStruct strips pointers and returns the named struct type, if any.
func namedStruct(t types.Type) (*types.Named, *types.Struct) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

func receiverObj(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

func paramObj(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	params := fn.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[params.List[0].Names[0]]
}

// LeafFields returns the leaf field paths of a struct type, recursing into
// struct-typed fields the same way the root reflection test
// (TestMetricsAddFoldsEveryField) does. The root metrics test asserts this
// enumeration and the reflect-based one agree, so the analyzer's view of
// Metrics and the runtime's cannot rot independently.
func LeafFields(t types.Type) []string {
	var out []string
	var walk func(st *types.Struct, prefix string)
	walk = func(st *types.Struct, prefix string) {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if sub, ok := f.Type().Underlying().(*types.Struct); ok {
				walk(sub, prefix+f.Name()+".")
				continue
			}
			out = append(out, prefix+f.Name())
		}
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		walk(st, "")
	}
	return out
}
