// Package a seeds the metricsfold diagnostics: accumulators whose Add
// methods drop fields.
package a

// Stats drops B (the classic forgotten-counter bug) — and folding the
// nested Sub through its own incomplete Add does not excuse Sub's bug.
type Stats struct {
	A   int64
	B   int64
	Sub Nested
}

func (m *Stats) Add(o *Stats) { // want `Stats.Add does not fold field B`
	m.A += o.A
	m.Sub.Add(&o.Sub)
}

// Nested folds X but not Y.
type Nested struct {
	X int64
	Y int64
}

func (m *Nested) Add(o *Nested) { // want `Nested.Add does not fold field Y`
	m.X += o.X
}

// Cross folds B twice and A never: the copy-paste cross-fold must be
// caught, not credited to A.
type Cross struct {
	A int64
	B int64
}

func (m *Cross) Add(o *Cross) { // want `Cross.Add does not fold field A`
	m.A += o.B
	m.B += o.B
}
