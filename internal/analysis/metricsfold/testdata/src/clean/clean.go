// Package clean is the negative case: complete accumulators and
// non-accumulator Add methods the analyzer must accept untouched.
package clean

import "time"

// Metrics mirrors the real xmlac.Metrics shape: int64 counters, a
// time.Duration, a float and a nested accumulator folded via its own Add.
type Metrics struct {
	Bytes   int64
	Views   int64
	Latency time.Duration
	Score   float64
	Phases  Phases
}

func (m *Metrics) Add(o *Metrics) {
	m.Bytes += o.Bytes
	m.Views += o.Views
	m.Latency += o.Latency
	m.Score += o.Score
	m.Phases.Add(&o.Phases)
}

// Phases folds every field.
type Phases struct {
	EvalNs int64
	EmitNs int64
}

func (b *Phases) Add(o *Phases) {
	b.EvalNs += o.EvalNs
	b.EmitNs += o.EmitNs
}

// Costs takes its parameter by value, like secure.Costs.
type Costs struct {
	Transferred int64
	Decrypted   int64
}

func (c *Costs) Add(o Costs) {
	c.Transferred += o.Transferred
	c.Decrypted += o.Decrypted
}

// Rule / Policy: Add whose parameter is a different type is an appender,
// not an accumulator, and is out of scope.
type Rule struct{ ID string }

type Policy struct{ Rules []Rule }

func (p *Policy) Add(r Rule) {
	p.Rules = append(p.Rules, r)
}

// MaxStats folds with something other than +=; any same-statement
// write/read pairing counts.
type MaxStats struct {
	Peak int64
}

func (m *MaxStats) Add(o *MaxStats) {
	m.Peak = max(m.Peak, o.Peak)
}
