package metricsfold_test

import (
	"testing"

	"xmlac/internal/analysis/analysistest"
	"xmlac/internal/analysis/metricsfold"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, metricsfold.New(), "testdata", "a")
}

func TestCleanCode(t *testing.T) {
	analysistest.Run(t, metricsfold.New(), "testdata", "clean")
}
