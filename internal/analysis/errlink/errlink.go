// Package errlink checks that error chains survive wrapping: the exact bug
// class of the PR 5 skipindex decoder, where a sentinel (remote.ErrChanged)
// wrapped with %v instead of %w silently broke every errors.Is check
// downstream and was only caught by a differential harness.
//
// Two diagnostics:
//
//   - an error-typed argument formatted by fmt.Errorf with any verb other
//     than %w severs the chain;
//   - comparing against a module sentinel error with == or != instead of
//     errors.Is breaks as soon as anyone wraps it (stdlib sentinels like
//     io.EOF are exempt: those are documented to be returned unwrapped).
package errlink

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"xmlac/internal/analysis"
)

// New returns the errlink analyzer. modulePrefix restricts the errors.Is
// check to sentinels defined in packages with that import-path prefix
// ("xmlac" in production, the golden-test module in tests).
func New(modulePrefix string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "errlink",
		Doc:  "error values must be wrapped with %w and module sentinels compared with errors.Is",
		Run: func(pass *analysis.Pass) error {
			run(pass, modulePrefix)
			return nil
		},
	}
}

func run(pass *analysis.Pass, modulePrefix string) {
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n, errorType)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n, modulePrefix)
			}
			return true
		})
	}
}

// checkErrorf flags error-typed arguments of fmt.Errorf formatted with a
// verb other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, errorType *types.Interface) {
	if !isPkgFunc(pass, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		// Explicit argument indexes or arg-count mismatch (go vet's
		// printf pass owns those); don't guess.
		return
	}
	for i, verb := range verbs {
		arg := call.Args[i+1]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if verb != 'w' && types.Implements(tv.Type, errorType) {
			pass.Reportf(arg.Pos(),
				"error value formatted with %%%c severs the error chain: use %%w so errors.Is and errors.As see the wrapped error", verb)
		}
	}
}

// checkSentinelCompare flags ==/!= against module-defined exported
// package-level error variables.
func checkSentinelCompare(pass *analysis.Pass, b *ast.BinaryExpr, modulePrefix string) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		obj := sentinelVar(pass, side, modulePrefix)
		if obj == nil {
			continue
		}
		// x == ErrFoo where the other side is nil is a plain nil check of
		// the variable itself, not a sentinel comparison.
		other := b.Y
		if side == b.Y {
			other = b.X
		}
		if tv, ok := pass.TypesInfo.Types[other]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(b.Pos(),
			"comparing against sentinel %s with %s breaks once the error is wrapped: use errors.Is", obj.Name(), b.Op)
		return
	}
}

// sentinelVar returns the object when expr is a use of an exported
// package-level error variable defined under modulePrefix.
func sentinelVar(pass *analysis.Pass, expr ast.Expr, modulePrefix string) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() { // package-level only
		return nil
	}
	if v.Pkg().Path() != modulePrefix && !strings.HasPrefix(v.Pkg().Path(), modulePrefix+"/") {
		return nil
	}
	named, ok := v.Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		// Only plain `error`-typed vars (errors.New / fmt.Errorf
		// sentinels); typed errors compare structurally on purpose.
		return nil
	}
	return v
}

// isPkgFunc reports whether fun resolves to pkgPath.name.
func isPkgFunc(pass *analysis.Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// constantString resolves expr to a constant string value.
func constantString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// formatVerbs returns the verb letter for each formatting argument of a
// printf-style format string, in order. ok is false when the format uses
// explicit argument indexes or * width/precision (which consume extra
// arguments in ways this analyzer does not model).
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false // explicit index
			}
			if c == '*' {
				return nil, false // * consumes an argument
			}
			if strings.IndexByte("+-# 0.0123456789", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			return nil, false
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
