package errlink_test

import (
	"testing"

	"xmlac/internal/analysis/analysistest"
	"xmlac/internal/analysis/errlink"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, errlink.New("vettest"), "testdata", "a")
}

func TestCleanCode(t *testing.T) {
	analysistest.Run(t, errlink.New("vettest"), "testdata", "clean")
}
