// Package a seeds every diagnostic the errlink analyzer can emit.
package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrBad is a module sentinel: wrapping it with anything but %w, or
// comparing it with ==, breaks errors.Is downstream.
var ErrBad = errors.New("a: bad")

type parseError struct{ off int }

func (e *parseError) Error() string { return fmt.Sprintf("parse error at %d", e.off) }

func wrapWithV(err error) error {
	return fmt.Errorf("reading header: %v", err) // want `error value formatted with %v severs the error chain`
}

func wrapWithS(err error) error {
	return fmt.Errorf("decoding body: %s", err) // want `error value formatted with %s severs the error chain`
}

func wrapSentinelTail(err error) error {
	// The exact PR 5 shape: the outer sentinel is wrapped, the inner
	// cause is not, so errors.Is(err, io.EOF) fails downstream.
	return fmt.Errorf("%w: short read: %v", ErrBad, err) // want `error value formatted with %v severs the error chain`
}

func wrapConcrete(e *parseError) error {
	return fmt.Errorf("giving up: %v", e) // want `error value formatted with %v severs the error chain`
}

func compareEq(err error) bool {
	return err == ErrBad // want `comparing against sentinel ErrBad with == breaks once the error is wrapped`
}

func compareNeq(err error) bool {
	return err != ErrBad // want `comparing against sentinel ErrBad with != breaks once the error is wrapped`
}

// compareStdlib is NOT flagged: io.EOF is outside the module prefix and is
// documented to be returned unwrapped.
func compareStdlib(err error) bool {
	return err == io.EOF
}
