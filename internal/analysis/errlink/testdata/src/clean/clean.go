// Package clean is the negative case: idiomatic error handling that the
// errlink analyzer must accept without a single diagnostic.
package clean

import (
	"errors"
	"fmt"
)

// ErrGone is a module sentinel handled correctly throughout.
var ErrGone = errors.New("clean: gone")

func wrapWithW(err error) error {
	return fmt.Errorf("reading header: %w", err)
}

func wrapTwoChains(err error) error {
	return fmt.Errorf("%w: short read: %w", ErrGone, err)
}

func messageOnly(path string, size int) error {
	return fmt.Errorf("file %s too large (%d bytes)", path, size)
}

func renderedString(err error) string {
	// Formatting err.Error() (a plain string) is fine: the caller chose
	// to render, not to wrap.
	return fmt.Sprintf("warning: %s", err.Error())
}

func compareWithIs(err error) bool {
	return errors.Is(err, ErrGone)
}

func nilChecks(err error) bool {
	// Plain nil comparisons are not sentinel comparisons.
	return err == nil || ErrGone == nil
}
