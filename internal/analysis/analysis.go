// Package analysis is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis surface this module needs: an Analyzer
// is a named check with a Run function, a Pass hands it one type-checked
// package, and diagnostics are reported through the Pass. The repo cannot
// vendor x/tools (the build environment is offline and the module is
// deliberately dependency-free), so the framework trades x/tools' facts,
// SSA and result plumbing for a small loader built on `go list -deps
// -export -json` plus go/types — everything the xmlac-vet analyzers need to
// machine-check the paper's trust boundary and the repo's correctness
// invariants at vet time.
//
// The suite lives in the sub-packages:
//
//   - keytaint: secure.Key values (and byte slices derived from them) must
//     never flow into logging, error construction, serialization, or any
//     symbol under internal/server.
//   - trustboundary: a config-driven symbol/import deny-list proving the
//     untrusted server surface never touches decrypt, evaluator or
//     key-handling entry points.
//   - errlink: sentinel errors must be wrapped with %w so errors.Is
//     survives every chain, and module sentinels must be compared with
//     errors.Is, not ==.
//   - phasepair: every trace.Context phase Begin has a matching End on all
//     return paths, and the configured trace types stay nil-receiver-safe.
//   - metricsfold: every field of an accumulator struct (Metrics,
//     PhaseBreakdown, secure.Costs) is folded by its Add method.
//
// cmd/xmlac-vet is the multichecker driver; internal/analysis/analysistest
// runs an analyzer over a golden testdata package with // want comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check: a name (stable, used in baseline entries
// and diagnostics), a short description, and a Run function invoked once
// per package.
type Analyzer struct {
	// Name identifies the analyzer in output and in .xmlac-vet.toml
	// baseline entries. Lower-case, no spaces.
	Name string
	// Doc is a one-line description of the invariant the analyzer proves.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	// The error return is for operational failures (the analyzer could not
	// run), not for findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside a package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: analyzer name plus a concrete file
// position, ready for printing and baseline matching.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column and analyzer name. An analyzer returning an
// error aborts the run: an invariant checker that cannot run is a CI
// failure, not a silent pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
