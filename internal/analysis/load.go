package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
)

// Package is one loaded, parsed and type-checked package of the target
// module.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// ModuleDir is the root directory of the module the package belongs
	// to (used to print module-relative paths and match baseline entries).
	ModuleDir string
	// GoFiles are the non-test Go source files (absolute paths).
	GoFiles []string
	// Imports are the direct import paths.
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
}

// Load loads, parses and type-checks the main-module packages matched by
// patterns (plus everything they depend on, for type information), running
// the go tool from dir. It returns the main-module packages in dependency
// order. The loader shells out to `go list -deps -export -json`, so
// dependency type information comes from compiler export data in the build
// cache — no network, no external modules, and test files are excluded by
// construction.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %w\n%s", args, err, stderr.Bytes())
	}

	var metas []*listPackage
	byPath := map[string]*listPackage{}
	dec := json.NewDecoder(&stdout)
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		meta := m
		metas = append(metas, &meta)
		byPath[meta.ImportPath] = &meta
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		checked: checked,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			meta, ok := byPath[path]
			if !ok || meta.Export == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(meta.Export)
		}),
	}

	var out []*Package
	for _, meta := range metas {
		if meta.Standard || meta.Module == nil {
			continue
		}
		files := make([]*ast.File, 0, len(meta.GoFiles))
		goFiles := make([]string, 0, len(meta.GoFiles))
		for _, name := range meta.GoFiles {
			full := name
			if !os.IsPathSeparator(name[0]) {
				full = meta.Dir + string(os.PathSeparator) + name
			}
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", full, err)
			}
			files = append(files, f)
			goFiles = append(goFiles, full)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		var typeErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if typeErr == nil {
					typeErr = err
				}
			},
		}
		tpkg, err := conf.Check(meta.ImportPath, fset, files, info)
		if err != nil && typeErr != nil {
			err = typeErr
		}
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", meta.ImportPath, err)
		}
		checked[meta.ImportPath] = tpkg
		if !meta.Module.Main {
			continue
		}
		out = append(out, &Package{
			Path:      meta.ImportPath,
			Dir:       meta.Dir,
			ModuleDir: meta.Module.Dir,
			GoFiles:   goFiles,
			Imports:   meta.Imports,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			Info:      info,
		})
	}
	return out, nil
}

// moduleImporter resolves module packages from the already-type-checked
// set (go list -deps emits dependencies first, so they are always present)
// and everything else from compiler export data.
type moduleImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return m.gc.Import(path)
}
