// Package client is outside the configured boundary: the client-side SOE
// is exactly where keys and the evaluator live, so nothing here is
// reported.
package client

import (
	"vettest/api"
	"vettest/secure"
)

func Unlock(pass string) []byte {
	k := secure.Derive(pass)
	_ = api.DeriveKey(pass)
	return []byte(k)
}

func Open(v *api.Vault, pass string) []byte {
	return v.Unseal(pass)
}
