// Package api mirrors the xmlac root facade: the key-handling and
// evaluator entry points the server side must never reference.
package api

// Key mirrors the facade's key alias.
type Key []byte

// DeriveKey mirrors the facade's key derivation.
func DeriveKey(pass string) Key {
	k := make(Key, 16)
	for i := range k {
		k[i] = byte(len(pass) + i)
	}
	return k
}

// Vault carries a method-form denied symbol.
type Vault struct{}

// Unseal stands in for a decrypt entry point.
func (Vault) Unseal(pass string) []byte { return []byte(pass) }
