// Package secure mirrors xmlac/internal/secure: a denied import for the
// server side.
package secure

// Key is the mimic key type.
type Key []byte

// Derive mimics key derivation.
func Derive(pass string) Key { return Key(pass) }
