// Package ok is the negative case inside the boundary: server-side code
// that sticks to ciphertext and metadata raises no diagnostics.
package ok

import "vettest/api"

// Serve hands opaque ciphertext through untouched.
func Serve(blob []byte) []byte { return blob }

// Describe may name allowed client types; only the denied symbols are out
// of bounds.
func Describe(v *api.Vault) string {
	if v == nil {
		return "no vault"
	}
	return "vault"
}
