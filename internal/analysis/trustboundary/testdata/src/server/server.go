// Package server seeds the trust-boundary diagnostics: an untrusted-side
// package importing and referencing the denied client-side symbols.
package server

import (
	"vettest/api"
	"vettest/secure" // want `trust-boundary violation: vettest/server must not import vettest/secure`
)

type Store struct {
	key api.Key // want `trust-boundary violation: vettest/server must not reference vettest/api\.Key`
}

func (s *Store) Load(pass string) {
	s.key = api.DeriveKey(pass) // want `must not reference vettest/api\.DeriveKey`
	_ = secure.Derive(pass)
}

func open(v *api.Vault, pass string) []byte {
	return v.Unseal(pass) // want `must not reference vettest/api\.Vault\.Unseal`
}
