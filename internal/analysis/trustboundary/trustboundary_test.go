package trustboundary_test

import (
	"testing"

	"xmlac/internal/analysis/analysistest"
	"xmlac/internal/analysis/trustboundary"
	"xmlac/internal/analysis/vetcfg"
)

// testConfig draws the boundary around the vettest mimic packages.
func testConfig() vetcfg.Trustboundary {
	return vetcfg.Trustboundary{
		Packages:    []string{"vettest/server"},
		DenyImports: []string{"vettest/secure"},
		DenySymbols: []string{
			"vettest/api.Key",
			"vettest/api.DeriveKey",
			"vettest/api.Vault.Unseal",
		},
	}
}

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, trustboundary.New(testConfig()), "testdata", "server")
}

func TestCleanInsideBoundary(t *testing.T) {
	analysistest.Run(t, trustboundary.New(testConfig()), "testdata", "server/ok")
}

func TestClientSideIsExempt(t *testing.T) {
	analysistest.Run(t, trustboundary.New(testConfig()), "testdata", "client")
}
