// Package trustboundary machine-checks the deployment split the paper's
// security argument rests on: the untrusted server packages must never
// link or call the client-side decrypt, evaluator, or key-handling entry
// points. The boundary is config-driven ([trustboundary] in
// .xmlac-vet.toml): a list of package prefixes the rules apply to, import
// prefixes they must not pull in, and fully-qualified symbols they must
// not reference. The intentional exception — the trusted single-machine
// demo mode in internal/server — is carried as documented allow entries in
// the baseline, so any *new* crossing of the boundary fails vet.
package trustboundary

import (
	"go/ast"
	"go/types"
	"strings"

	"xmlac/internal/analysis"
	"xmlac/internal/analysis/vetcfg"
)

// DefaultConfig is the production boundary: the server side may serve
// ciphertext and metadata but must not touch keys, protection, or compiled
// policies (the evaluator's handle).
func DefaultConfig() vetcfg.Trustboundary {
	return vetcfg.Trustboundary{
		Packages:    []string{"xmlac/internal/server", "xmlac/cmd/xmlac-serve"},
		DenyImports: []string{"xmlac/internal/secure", "xmlac/internal/xpath", "xmlac/internal/automaton"},
		DenySymbols: []string{
			"xmlac.Key",
			"xmlac.DeriveKey",
			"xmlac.Protect",
			"xmlac.CompiledPolicy",
		},
	}
}

// New returns the trustboundary analyzer for the given boundary config.
func New(cfg vetcfg.Trustboundary) *analysis.Analyzer {
	if len(cfg.Packages) == 0 {
		cfg = DefaultConfig()
	}
	denied := map[string]bool{}
	for _, s := range cfg.DenySymbols {
		denied[s] = true
	}
	return &analysis.Analyzer{
		Name: "trustboundary",
		Doc:  "server-side packages must not import or reference client-side crypto, evaluator, or key symbols",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg, denied)
			return nil
		},
	}
}

func run(pass *analysis.Pass, cfg vetcfg.Trustboundary, denied map[string]bool) {
	if !matchesAny(pass.Pkg.Path(), cfg.Packages) {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if matchesAny(path, cfg.DenyImports) {
				pass.Reportf(imp.Pos(),
					"trust-boundary violation: %s must not import %s (the untrusted server side must never link the client-side crypto or evaluator)",
					pass.Pkg.Path(), path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
				return true
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return true // the import check covers whole packages
			}
			if q := qualify(obj); denied[q] {
				pass.Reportf(id.Pos(),
					"trust-boundary violation: %s must not reference %s (key handling and view evaluation belong to the client-side SOE)",
					pass.Pkg.Path(), q)
			}
			return true
		})
	}
}

// qualify renders an object as "pkg.Name" or, for methods, "pkg.Recv.Name"
// to match the deny_symbols config format.
func qualify(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
