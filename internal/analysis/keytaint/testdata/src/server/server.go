// Package server mirrors xmlac/internal/server: the untrusted surface that
// must never receive key material.
package server

// Register stands in for any server entry point.
func Register(docID string, payload []byte) {}

// Fetch stands in for a benign server call.
func Fetch(docID string) []byte { return nil }
