// Package secure mirrors xmlac/internal/secure for the golden tests (the
// real package is internal to the xmlac module; the analyzer is configured
// with both type names).
package secure

// Key is the mimic of secure.Key: a symmetric key as raw bytes.
type Key []byte

// Derive stands in for the real key-derivation entry point.
func Derive(passphrase string) Key {
	k := make(Key, 16)
	for i := range k {
		k[i] = byte(len(passphrase) + i)
	}
	return k
}
