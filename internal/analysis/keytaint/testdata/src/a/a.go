// Package a seeds the keytaint diagnostics: every way key material could
// leak into logs, errors, serialization, or the server surface.
package a

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"

	"vettest/secure"
	"vettest/server"
)

func logKeyDirectly(key secure.Key) {
	log.Printf("using key %x", key) // want `value derived from a secure key reaches log\.Printf`
}

func keyInError(key secure.Key) error {
	return fmt.Errorf("decrypt failed with key %x", key) // want `value derived from a secure key reaches fmt\.Errorf`
}

func slogKey(key secure.Key) {
	slog.Info("session established", "key", key) // want `value derived from a secure key reaches log/slog\.Info`
}

func hexThroughVariable(key secure.Key) {
	dump := hex.EncodeToString(key)
	fmt.Println("key dump:", dump) // want `value derived from a secure key reaches fmt\.Println`
}

func convertedAndMarshalled(key secure.Key) ([]byte, error) {
	raw := []byte(key)
	return json.Marshal(raw) // want `value derived from a secure key reaches encoding/json\.Marshal`
}

func keyToServer(key secure.Key, docID string) {
	server.Register(docID, key) // want `value derived from a secure key reaches vettest/server\.Register \(untrusted server surface\)`
}

func concatIntoError(key secure.Key) error {
	msg := "unlock failed for " + string(key)
	return errors.New(msg) // want `value derived from a secure key reaches errors\.New`
}

func derivedSliceLeaks(pass string) {
	key := secure.Derive(pass)
	prefix := key[:4]
	fmt.Printf("key prefix %x\n", prefix) // want `value derived from a secure key reaches fmt\.Printf`
}

func copiedKeyLeaks(key secure.Key) {
	buf := make([]byte, len(key))
	copy(buf, key)
	log.Println(buf) // want `value derived from a secure key reaches log\.Println`
}
