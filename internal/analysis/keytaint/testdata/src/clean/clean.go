// Package clean is the negative case: legitimate key handling the analyzer
// must accept — using keys for crypto, reporting sizes and errors without
// the material itself, and talking to the server with public data only.
package clean

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"

	"vettest/secure"
	"vettest/server"
)

func lengthInError(key secure.Key) error {
	if len(key) != 16 {
		return fmt.Errorf("key must be 16 bytes, got %d", len(key))
	}
	return nil
}

func logKeyLength(key secure.Key) {
	log.Printf("loaded a %d-byte key", len(key))
}

func useKeyForCrypto(key secure.Key, chunk []byte) []byte {
	out := seal(key, chunk)
	return out
}

func hashedFingerprintIsPublic(key secure.Key) {
	sum := sha256.Sum256(key)
	// A one-way digest of the key is not the key: fingerprints are how
	// deployments identify keys in logs without revealing them.
	log.Printf("key fingerprint %s", hex.EncodeToString(sum[:]))
}

func publicDataToServer(docID string) []byte {
	return server.Fetch(docID)
}

func ciphertextToServer(key secure.Key, docID string, chunk []byte) {
	sealed := seal(key, chunk)
	server.Register(docID, sealed)
}

func seal(key secure.Key, plain []byte) []byte {
	out := make([]byte, len(plain))
	for i, b := range plain {
		out[i] = b ^ key[i%len(key)]
	}
	return out
}
