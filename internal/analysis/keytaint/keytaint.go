// Package keytaint enforces the confidentiality half of the paper's trust
// boundary at vet time: values of type secure.Key — and byte slices or
// strings derived from one — must never flow into logging, error
// construction, serialization, or any symbol of the untrusted server
// packages. The server is untrusted *by construction* only while no code
// path can ever render or ship key material; a single slog call with a key
// argument would silently break the security model without failing a test.
//
// The check is an intraprocedural taint analysis over the AST: any
// expression whose static type is a configured key type seeds taint, a
// small set of propagators (assignment, conversion, slicing, append/copy,
// fmt.Sprint*, hex/base64 encoding) spreads it, and a diagnostic fires
// when a tainted value reaches a sink call. Unknown calls do not taint
// their results, so the analysis under-approximates rather than drowning
// the build in false positives.
package keytaint

import (
	"go/ast"
	"go/types"
	"strings"

	"xmlac/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// KeyTypes are fully-qualified named types ("pkgpath.Type") whose
	// values carry key material.
	KeyTypes []string
	// ServerPrefixes are import-path prefixes of the untrusted surface:
	// calls from outside into any symbol there with a tainted argument are
	// sinks.
	ServerPrefixes []string
}

// DefaultConfig covers the module's key type and server surface.
func DefaultConfig() Config {
	return Config{
		KeyTypes:       []string{"xmlac/internal/secure.Key"},
		ServerPrefixes: []string{"xmlac/internal/server"},
	}
}

// New returns the keytaint analyzer.
func New(cfg Config) *analysis.Analyzer {
	if len(cfg.KeyTypes) == 0 {
		cfg = DefaultConfig()
	}
	return &analysis.Analyzer{
		Name: "keytaint",
		Doc:  "secure.Key values and derived bytes must not reach logs, errors, serialization, or the server",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

func run(pass *analysis.Pass, cfg Config) {
	c := &checker{pass: pass, cfg: cfg, keyTypes: map[string]bool{}}
	for _, t := range cfg.KeyTypes {
		c.keyTypes[t] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.checkFunc(fn.Body)
			}
		}
	}
}

type checker struct {
	pass     *analysis.Pass
	cfg      Config
	keyTypes map[string]bool
	tainted  map[types.Object]bool
}

// checkFunc runs the fixed-point taint propagation over one function body
// (closures included: they share the outer function's taint set, matching
// how they share its variables) and then reports sink hits.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	c.tainted = map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if c.exprTainted(rhs) {
							changed = c.markIdent(n.Lhs[i]) || changed
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, v := range n.Values {
						if c.exprTainted(v) {
							obj := c.pass.TypesInfo.Defs[n.Names[i]]
							if obj != nil && !c.tainted[obj] {
								c.tainted[obj] = true
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if c.exprTainted(n.X) && n.Value != nil {
					changed = c.markIdent(n.Value) || changed
				}
			case *ast.CallExpr:
				// copy(dst, src) with a tainted source taints dst.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" &&
					len(n.Args) == 2 && c.exprTainted(n.Args[1]) {
					changed = c.markIdent(n.Args[0]) || changed
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink := c.sinkName(call)
		if sink == "" {
			return true
		}
		for _, arg := range call.Args {
			if c.exprTainted(arg) {
				c.pass.Reportf(arg.Pos(),
					"value derived from a secure key reaches %s: key material must never be logged, serialized, put into errors, or cross the untrusted-server boundary", sink)
			}
		}
		return true
	})
}

// markIdent taints the object behind an identifier expression, reporting
// whether anything changed.
func (c *checker) markIdent(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil || c.tainted[obj] {
		return false
	}
	c.tainted[obj] = true
	return true
}

// exprTainted reports whether an expression carries key material.
func (c *checker) exprTainted(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	if tv, ok := c.pass.TypesInfo.Types[expr]; ok && c.isKeyType(tv.Type) {
		return true
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return obj != nil && c.tainted[obj]
	case *ast.SelectorExpr:
		// A field of a tainted composite is tainted.
		return c.exprTainted(e.X)
	case *ast.IndexExpr:
		return c.exprTainted(e.X)
	case *ast.SliceExpr:
		return c.exprTainted(e.X)
	case *ast.StarExpr:
		return c.exprTainted(e.X)
	case *ast.UnaryExpr:
		return c.exprTainted(e.X)
	case *ast.BinaryExpr:
		// String concatenation carries taint; comparisons do not.
		if e.Op.IsOperator() && e.Op.String() == "+" {
			return c.exprTainted(e.X) || c.exprTainted(e.Y)
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if c.exprTainted(kv.Value) {
					return true
				}
				continue
			}
			if c.exprTainted(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// Conversions propagate ([]byte(key), string(key), Key(b)).
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && c.exprTainted(e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, a := range e.Args {
				if c.exprTainted(a) {
					return true
				}
			}
			return false
		}
		if c.isPropagator(e) {
			for _, a := range e.Args {
				if c.exprTainted(a) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// isKeyType reports whether t (or its pointer/slice element) is a
// configured key type.
func (c *checker) isKeyType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return c.keyTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// isPropagator recognizes calls whose result carries their arguments'
// taint: formatting and encoding helpers.
func (c *checker) isPropagator(call *ast.CallExpr) bool {
	obj := calleeFunc(c.pass, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "fmt":
		switch obj.Name() {
		case "Sprint", "Sprintf", "Sprintln", "Appendf", "Append", "Appendln":
			return true
		}
	case "encoding/hex":
		return obj.Name() == "EncodeToString" || obj.Name() == "AppendEncode"
	case "encoding/base64", "encoding/base32":
		return obj.Name() == "EncodeToString" || obj.Name() == "AppendEncode"
	case "bytes", "slices":
		return obj.Name() == "Clone" || obj.Name() == "Join" || obj.Name() == "Concat"
	case "strings":
		return obj.Name() == "Join" || obj.Name() == "Clone"
	}
	return false
}

// sinkName classifies a call as a sink, returning a human-readable symbol
// name ("" when not a sink).
func (c *checker) sinkName(call *ast.CallExpr) string {
	obj := calleeFunc(c.pass, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	qualified := pkg + "." + name
	switch pkg {
	case "fmt":
		switch name {
		case "Errorf", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return qualified
		}
	case "errors":
		if name == "New" {
			return qualified
		}
	case "log", "log/slog":
		return qualified // every symbol there renders its arguments
	case "encoding/json", "encoding/xml":
		switch name {
		case "Marshal", "MarshalIndent", "Encode":
			return qualified
		}
	case "encoding/gob":
		if name == "Encode" {
			return qualified
		}
	case "encoding/binary":
		if name == "Write" || name == "Append" {
			return qualified
		}
	}
	for _, prefix := range c.cfg.ServerPrefixes {
		if !underPrefix(pkg, prefix) {
			continue
		}
		// Calls within the server surface itself are the trustboundary
		// analyzer's concern.
		if underPrefix(c.pass.Pkg.Path(), prefix) {
			continue
		}
		return qualified + " (untrusted server surface)"
	}
	return ""
}

func underPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// calleeFunc resolves the called function or method object.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}
