package keytaint_test

import (
	"testing"

	"xmlac/internal/analysis/analysistest"
	"xmlac/internal/analysis/keytaint"
)

// testConfig covers the real module's names plus the vettest mimics used by
// the golden packages (internal packages cannot be imported from there).
func testConfig() keytaint.Config {
	return keytaint.Config{
		KeyTypes:       []string{"xmlac/internal/secure.Key", "vettest/secure.Key"},
		ServerPrefixes: []string{"xmlac/internal/server", "vettest/server"},
	}
}

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, keytaint.New(testConfig()), "testdata", "a")
}

func TestCleanUsage(t *testing.T) {
	analysistest.Run(t, keytaint.New(testConfig()), "testdata", "clean")
}
