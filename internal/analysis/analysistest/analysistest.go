// Package analysistest runs an analyzer over a golden package tree and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name. The testdata tree is copied into a temporary
// module that `replace`s xmlac with this repository, so golden files can
// import the real xmlac/internal packages (secure.Key, trace.Context, ...)
// and the analyzer sees exactly the types it will meet in production —
// all offline, with no dependencies beyond the Go toolchain.
//
// Layout: dir/src/<pkg>/... holds one package per directory; Run loads the
// requested packages (import path "vettest/<pkg>"). A // want "regexp"
// comment expects one diagnostic on its line whose message matches the
// regexp; multiple quoted regexps expect multiple diagnostics. Files
// without want comments are negative cases: any diagnostic in them fails
// the test.
package analysistest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xmlac/internal/analysis"
)

// Run loads dir/src/<pkg> for each pkg, runs the analyzer, and reports
// mismatches between diagnostics and // want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string, pkgs ...string) {
	t.Helper()
	findings := runAnalyzer(t, a, dir, pkgs)

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, f := range findings {
		got[key{f.Pos.Filename, f.Pos.Line}] = append(got[key{f.Pos.Filename, f.Pos.Line}], f.Message)
	}

	for _, pkg := range pkgs {
		root := filepath.Join(dir, "src", pkg)
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel := filepath.Join(pkg, strings.TrimPrefix(path, root+string(os.PathSeparator)))
			for i, line := range strings.Split(string(data), "\n") {
				lineno := i + 1
				k := key{rel, lineno}
				wants, err := parseWant(line)
				if err != nil {
					t.Errorf("%s:%d: %v", rel, lineno, err)
					continue
				}
				msgs := got[k]
				delete(got, k)
				for _, w := range wants {
					rx, err := regexp.Compile(w)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", rel, lineno, w, err)
						continue
					}
					found := -1
					for j, m := range msgs {
						if rx.MatchString(m) {
							found = j
							break
						}
					}
					if found < 0 {
						t.Errorf("%s:%d: no diagnostic matching %q (got %v)", rel, lineno, w, msgs)
						continue
					}
					msgs = append(msgs[:found], msgs[found+1:]...)
				}
				for _, m := range msgs {
					t.Errorf("%s:%d: unexpected diagnostic: %s", rel, lineno, m)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: diagnostic outside any scanned file: %s", k.file, k.line, m)
		}
	}
}

// runAnalyzer builds the temp module, loads the packages and returns the
// findings with filenames rewritten relative to the temp src root.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, dir string, pkgs []string) []analysis.Finding {
	t.Helper()
	repoRoot := moduleRoot(t)
	tmp := t.TempDir()
	gomod := fmt.Sprintf("module vettest\n\ngo 1.22\n\nrequire xmlac v0.0.0\n\nreplace xmlac => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	srcRoot := filepath.Join(dir, "src")
	if err := copyTree(srcRoot, tmp); err != nil {
		t.Fatalf("copying testdata: %v", err)
	}
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "vettest/" + p
	}
	loaded, err := analysis.Load(tmp, patterns...)
	if err != nil {
		t.Fatalf("loading golden packages: %v", err)
	}
	// Load returns main-module dependencies too (a golden package may
	// import a helper package); only the requested packages are under
	// test.
	requested := map[string]bool{}
	for _, p := range patterns {
		requested[p] = true
	}
	var target []*analysis.Package
	for _, p := range loaded {
		if requested[p.Path] {
			target = append(target, p)
		}
	}
	findings, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	// The loader resolves the temp dir through symlinks (go list reports
	// the real path); rewrite filenames relative to whatever prefix ends
	// at the package dir.
	for i := range findings {
		name := findings[i].Pos.Filename
		for _, p := range pkgs {
			marker := string(os.PathSeparator) + p + string(os.PathSeparator)
			if idx := strings.Index(name, marker); idx >= 0 {
				findings[i].Pos.Filename = name[idx+1:]
				break
			}
		}
	}
	return findings
}

// moduleRoot locates this repository's root via go env GOMOD.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatalf("not inside a module")
	}
	return filepath.Dir(gomod)
}

// copyTree copies the directory tree rooted at src into dst.
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// parseWant extracts the quoted regexps of a // want comment on a line.
func parseWant(line string) ([]string, error) {
	idx := strings.Index(line, "// want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(line[idx+len("// want "):])
	var wants []string
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("malformed want comment near %q (expected a quoted regexp)", rest)
		}
		end := 1
		for end < len(rest) {
			if rest[end] == quote && (quote == '`' || rest[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(rest) {
			return nil, fmt.Errorf("unterminated want regexp in %q", rest)
		}
		s, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %w", rest[:end+1], err)
		}
		wants = append(wants, s)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return wants, nil
}
