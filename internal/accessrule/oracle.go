package accessrule

import (
	"xmlac/internal/xmlstream"
	"xmlac/internal/xpath"
)

// This file contains a non-streaming *reference implementation* of the
// access-control semantics of section 2, evaluated over an in-memory
// document. It plays two roles:
//
//   - ground truth for the tests of the streaming evaluator (internal/core),
//     which must produce exactly the same authorized view;
//   - the oracle used by the LWB (lower bound) strategy of the performance
//     model (section 7): "the time required by an oracle to read only the
//     authorized fragments of a document", which requires knowing the exact
//     authorized byte set in advance.
//
// The SOE never runs this code: it would require materializing the document,
// which the paper's memory constraint forbids.

// nodeDecision is the tri-valued outcome for a node.
type nodeDecision int

const (
	decisionDeny nodeDecision = iota
	decisionPermit
)

// ViewOptions tunes the construction of the authorized view.
type ViewOptions struct {
	// DummyDeniedNames replaces the tag of denied ancestors kept by the
	// structural rule with "_" (the paper allows replacing them "by a dummy
	// value"). When false the original names are kept.
	DummyDeniedNames bool
	// Query restricts the view to the scope of a query expressed in the same
	// fragment; nil means "deliver the whole authorized view".
	Query *xpath.Path
}

// AuthorizedView computes the authorized view of the document for the policy
// using the reference semantics. The returned tree contains:
//   - every element whose conflict-resolved decision is Permit, with its text;
//   - ancestors of permitted elements (structural rule) without their own
//     text when they are themselves denied;
//   - nothing else.
//
// A nil return value means the view is empty.
func AuthorizedView(doc *xmlstream.Node, policy *Policy, opts ViewOptions) *xmlstream.Node {
	if doc == nil {
		return nil
	}
	match := matchRules(doc, policy)
	view, _ := buildView(doc, policy, match, nil, nil, opts)
	if view == nil || opts.Query == nil {
		return view
	}
	// Per section 2, "the result of a query is computed from the authorized
	// view of the queried document": the query is evaluated against the view
	// itself (so its predicates cannot observe denied data), and the result
	// keeps the matched subtrees plus the structural path to them.
	return pruneToQuery(view, opts.Query)
}

// pruneToQuery restricts a view to the subtrees matched by the query plus
// the ancestor structure leading to them. It returns nil when the query
// matches nothing.
func pruneToQuery(view *xmlstream.Node, query *xpath.Path) *xmlstream.Node {
	scope := map[*xmlstream.Node]struct{}{}
	for _, m := range xpath.Select(view, query) {
		m.Walk(func(d *xmlstream.Node) bool {
			scope[d] = struct{}{}
			return true
		})
	}
	if len(scope) == 0 {
		return nil
	}
	var prune func(n *xmlstream.Node) *xmlstream.Node
	prune = func(n *xmlstream.Node) *xmlstream.Node {
		if _, ok := scope[n]; ok {
			return n.Clone()
		}
		out := xmlstream.NewElement(n.Name)
		keep := false
		for _, c := range n.Children {
			if c.Kind != xmlstream.ElementNode {
				continue
			}
			if cv := prune(c); cv != nil {
				out.Children = append(out.Children, cv)
				keep = true
			}
		}
		if !keep {
			return nil
		}
		return out
	}
	return prune(view)
}

// Decide returns true when the conflict-resolved decision for the given
// element node (which must belong to doc) is Permit.
func Decide(doc *xmlstream.Node, policy *Policy, target *xmlstream.Node) bool {
	match := matchRules(doc, policy)
	var decideDown func(n *xmlstream.Node, stack []levelRules) (bool, bool)
	decideDown = func(n *xmlstream.Node, stack []levelRules) (bool, bool) {
		level := levelRules{}
		for i, r := range policy.Rules {
			if _, ok := match[i][n]; ok {
				level.rules = append(level.rules, r)
			}
		}
		newStack := stack
		if len(level.rules) > 0 {
			newStack = append(append([]levelRules{}, stack...), level)
		}
		if n == target {
			return resolve(newStack) == decisionPermit, true
		}
		for _, c := range n.Children {
			if c.Kind != xmlstream.ElementNode {
				continue
			}
			if d, found := decideDown(c, newStack); found {
				return d, true
			}
		}
		return false, false
	}
	d, _ := decideDown(doc, nil)
	return d
}

// levelRules groups the rules whose object matched directly at one
// ancestor-or-self level, mirroring one level of the Authorization Stack.
type levelRules struct {
	rules []Rule
}

// matchRules evaluates every rule object over the document and returns, per
// rule index, the set of elements it matches directly.
func matchRules(doc *xmlstream.Node, policy *Policy) []map[*xmlstream.Node]struct{} {
	out := make([]map[*xmlstream.Node]struct{}, len(policy.Rules))
	for i, r := range policy.Rules {
		set := map[*xmlstream.Node]struct{}{}
		for _, n := range xpath.Select(doc, r.Object) {
			set[n] = struct{}{}
		}
		out[i] = set
	}
	return out
}

// resolve applies the conflict-resolution algorithm of Figure 4 (without
// pending statuses, which cannot occur in the oracle since every predicate
// is fully evaluated): starting from the most specific level, the first
// level containing any rule decides; Denial-Takes-Precedence within a level;
// the implicit bottom of the stack is a negative rule (closed policy).
func resolve(stack []levelRules) nodeDecision {
	for i := len(stack) - 1; i >= 0; i-- {
		hasNeg, hasPos := false, false
		for _, r := range stack[i].rules {
			if r.Sign == Deny {
				hasNeg = true
			} else {
				hasPos = true
			}
		}
		if hasNeg {
			return decisionDeny
		}
		if hasPos {
			return decisionPermit
		}
	}
	return decisionDeny
}

// buildView recursively constructs the authorized view. It returns the view
// subtree (nil when nothing below n is delivered) and whether n itself is
// permitted.
func buildView(n *xmlstream.Node, policy *Policy, match []map[*xmlstream.Node]struct{},
	stack []levelRules, queryScope map[*xmlstream.Node]struct{}, opts ViewOptions) (*xmlstream.Node, bool) {

	level := levelRules{}
	for i, r := range policy.Rules {
		if _, ok := match[i][n]; ok {
			level.rules = append(level.rules, r)
		}
	}
	newStack := stack
	if len(level.rules) > 0 {
		newStack = append(append([]levelRules{}, stack...), level)
	}
	permitted := resolve(newStack) == decisionPermit
	inQuery := queryScope == nil
	if !inQuery {
		_, inQuery = queryScope[n]
	}

	// Recurse on element children first: even when n is denied, a descendant
	// may be permitted (most-specific-object) and then the structural rule
	// forces n to appear (without its text). childViews is indexed like
	// n.Children, with nil entries for text nodes and for element children
	// delivering nothing.
	childViews := make([]*xmlstream.Node, len(n.Children))
	anyChild := false
	for i, c := range n.Children {
		if c.Kind != xmlstream.ElementNode {
			continue
		}
		cv, _ := buildView(c, policy, match, newStack, queryScope, opts)
		childViews[i] = cv
		if cv != nil {
			anyChild = true
		}
	}

	deliverSelf := permitted && inQuery
	if !deliverSelf && !anyChild {
		return nil, permitted
	}

	name := n.Name
	if !permitted && opts.DummyDeniedNames {
		name = "_"
	}
	out := xmlstream.NewElement(name)
	for i, c := range n.Children {
		if c.Kind == xmlstream.TextNode {
			if deliverSelf {
				out.Children = append(out.Children, xmlstream.NewText(c.Value))
			}
			continue
		}
		if childViews[i] != nil {
			out.Children = append(out.Children, childViews[i])
		}
	}
	return out, permitted
}
