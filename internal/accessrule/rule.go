// Package accessrule implements the access-control model of the paper
// (section 2): rules of the form <sign, subject, object> where the object is
// an XPath expression of XP{[],*,//}, policies grouping the rules granted to
// one subject on one document, the closed-policy / Denial-Takes-Precedence /
// Most-Specific-Object-Takes-Precedence semantics constants used by the
// streaming evaluator, the motivating-example policies of Figure 1 and the
// static containment-based policy minimization sketched in section 3.3.
package accessrule

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"

	"xmlac/internal/xpath"
)

// Sign is the polarity of an access rule.
type Sign int

const (
	// Permit grants read access to the object ("positive rule").
	Permit Sign = iota
	// Deny forbids read access to the object ("negative rule").
	Deny
)

// String implements fmt.Stringer using the paper's ⊕/⊖ convention rendered
// in ASCII.
func (s Sign) String() string {
	if s == Deny {
		return "-"
	}
	return "+"
}

// Rule is one access-control rule: <sign, subject, object>. Subject is kept
// on the Policy; the rule itself carries the sign, a stable identifier used
// in traces, and the object path.
type Rule struct {
	// ID is a short identifier such as "D2" or "R1"; it is assigned
	// automatically when empty.
	ID string
	// Sign is Permit or Deny.
	Sign Sign
	// Object delineates the scope of the rule. Per the cascading-propagation
	// principle the rule applies to every node matched by Object and to all
	// their descendants.
	Object *xpath.Path
}

// String renders the rule as "ID: ±, object".
func (r Rule) String() string {
	return fmt.Sprintf("%s: %s, %s", r.ID, r.Sign, r.Object)
}

// ErrInvalidRule wraps rule and policy construction errors.
var ErrInvalidRule = errors.New("accessrule: invalid rule")

// ParseRule builds a rule from a sign ('+' or '-') and an XPath object
// expression.
func ParseRule(id string, sign string, object string) (Rule, error) {
	var s Sign
	switch strings.TrimSpace(sign) {
	case "+", "permit", "allow":
		s = Permit
	case "-", "deny", "forbid":
		s = Deny
	default:
		return Rule{}, fmt.Errorf("%w: unknown sign %q", ErrInvalidRule, sign)
	}
	p, err := xpath.Parse(object)
	if err != nil {
		return Rule{}, fmt.Errorf("%w: %w", ErrInvalidRule, err)
	}
	return Rule{ID: id, Sign: s, Object: p}, nil
}

// MustRule is ParseRule panicking on error; used for built-in policies and
// tests.
func MustRule(id, sign, object string) Rule {
	r, err := ParseRule(id, sign, object)
	if err != nil {
		panic(err)
	}
	return r
}

// Policy is the access control policy of one subject over one document: "the
// set of rules attached to a given subject on a given document" (section 2).
// The policy is closed: by default nothing is accessible, and the structural
// rule keeps ancestors of authorized nodes in the view.
type Policy struct {
	// Subject identifies the user or role; it substitutes the USER variable
	// of rule predicates.
	Subject string
	// Rules in declaration order.
	Rules []Rule
}

// NewPolicy builds a policy for a subject. Rules with an empty ID get one
// assigned from their sign and position.
func NewPolicy(subject string, rules ...Rule) *Policy {
	p := &Policy{Subject: subject}
	for _, r := range rules {
		p.Add(r)
	}
	return p
}

// Add appends a rule, assigning an ID when missing and binding the USER
// variable of its object to the policy subject.
func (p *Policy) Add(r Rule) {
	if r.ID == "" {
		r.ID = fmt.Sprintf("%s%d", map[Sign]string{Permit: "P", Deny: "N"}[r.Sign], len(p.Rules)+1)
	}
	if p.Subject != "" {
		r.Object = r.Object.BindUser(p.Subject)
	}
	p.Rules = append(p.Rules, r)
}

// String renders the policy, one rule per line.
func (p *Policy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy for %q:\n", p.Subject)
	for _, r := range p.Rules {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// PositiveRules returns the permit rules of the policy.
func (p *Policy) PositiveRules() []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Sign == Permit {
			out = append(out, r)
		}
	}
	return out
}

// NegativeRules returns the deny rules of the policy.
func (p *Policy) NegativeRules() []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Sign == Deny {
			out = append(out, r)
		}
	}
	return out
}

// Labels returns the union of the element labels mentioned by all rule
// objects. The Skip index uses it to prune rules inside subtrees.
func (p *Policy) Labels() map[string]struct{} {
	out := map[string]struct{}{}
	for _, r := range p.Rules {
		for l := range r.Object.Labels() {
			out[l] = struct{}{}
		}
	}
	return out
}

// Fingerprint returns a stable hex digest identifying the policy: same
// subject and same rules (IDs, signs and objects, in order) yield the same
// fingerprint across processes. Compiled-policy caches use it as part of
// their key so that replacing a subject's policy naturally invalidates the
// cached compilation.
func (p *Policy) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, p.Subject)
	h.Write([]byte{0})
	for _, r := range p.Rules {
		io.WriteString(h, r.ID)
		h.Write([]byte{0})
		io.WriteString(h, r.Sign.String())
		h.Write([]byte{0})
		io.WriteString(h, r.Object.String())
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Clone returns a deep copy of the policy.
func (p *Policy) Clone() *Policy {
	cp := &Policy{Subject: p.Subject, Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		cp.Rules[i] = Rule{ID: r.ID, Sign: r.Sign, Object: r.Object.Clone()}
	}
	return cp
}

// Minimize applies the static optimization of section 3.3: a rule S may be
// removed when another rule R of the same sign contains it AND no rule T of
// opposite sign is contained in R (the strong sufficient condition given in
// the paper: {Ti..} ⊑ {Si..} ⊑ {Ri..} with matching signs would allow
// eliminating the Si, which degenerates to this pairwise check when no
// opposite-sign rule interferes). The original policy is not modified; the
// minimized copy is returned together with the IDs of the removed rules.
func (p *Policy) Minimize() (*Policy, []string) {
	keep := make([]bool, len(p.Rules))
	for i := range keep {
		keep[i] = true
	}
	var removed []string
	for i, s := range p.Rules {
		if !keep[i] {
			continue
		}
		for j, r := range p.Rules {
			if i == j || !keep[j] || r.Sign != s.Sign {
				continue
			}
			if !xpath.Contains(r.Object, s.Object) {
				continue
			}
			// If the container also contains s (mutual containment,
			// i.e. equivalent objects) keep the earlier rule and drop the
			// later one to stay deterministic.
			if xpath.Contains(s.Object, r.Object) && j > i {
				continue
			}
			// Elimination is blocked if any opposite-sign rule is contained
			// in the container R: inside R's scope that rule could override
			// R but not S (most-specific-object), so S still matters.
			blocked := false
			for _, t := range p.Rules {
				if t.Sign == r.Sign {
					continue
				}
				if xpath.Contains(r.Object, t.Object) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			keep[i] = false
			removed = append(removed, s.ID)
			break
		}
	}
	out := &Policy{Subject: p.Subject}
	for i, r := range p.Rules {
		if keep[i] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out, removed
}
