package accessrule

import "fmt"

// Built-in policies of the motivating example (Figure 1 of the paper),
// expressed on the Hospital document. They are used by the examples, the
// experiment harness (Figures 9-11) and the tests.

// SecretaryPolicy returns the secretary profile: access to the patients'
// administrative sub-folders only.
//
//	S1: +, //Admin
func SecretaryPolicy() *Policy {
	return NewPolicy("secretary",
		MustRule("S1", "+", "//Admin"),
	)
}

// DoctorPolicy returns the doctor profile for the given physician
// identifier: administrative sub-folders, all medical acts and analysis of
// her patients, except the details of acts she did not carry out herself.
//
//	D1: +, //Folder/Admin
//	D2: +, //MedActs[//RPhys = USER]
//	D3: -, //Act[RPhys != USER]/Details
//	D4: +, //Folder[MedActs//RPhys = USER]/Analysis
func DoctorPolicy(physician string) *Policy {
	return NewPolicy(physician,
		MustRule("D1", "+", "//Folder/Admin"),
		MustRule("D2", "+", "//MedActs[//RPhys = USER]"),
		MustRule("D3", "-", "//Act[RPhys != USER]/Details"),
		MustRule("D4", "+", "//Folder[MedActs//RPhys = USER]/Analysis"),
	)
}

// ResearcherPolicy returns the researcher profile: the laboratory results
// and the age of patients who subscribed to a protocol test of the given
// groups, provided the Cholesterol measurement does not exceed 250 mg/dL.
// The paper uses groups G1..G10; rules R2 and R3 are instantiated once per
// group ("Rules 2 & 3 occur for each of the 10 groups"), and Figure 9
// evaluates the researcher with 10 protocols to stress the evaluator.
//
//	R1:  +, //Folder[Protocol]//Age
//	R2g: +, //Folder[Protocol/Type=Gg]//LabResults//Gg
//	R3g: -, //Gg[Cholesterol > 250]
func ResearcherPolicy(groups ...string) *Policy {
	if len(groups) == 0 {
		groups = []string{"G3"}
	}
	p := NewPolicy("researcher",
		MustRule("R1", "+", "//Folder[Protocol]//Age"),
	)
	for i, g := range groups {
		p.Add(MustRule(fmt.Sprintf("R2.%d", i+1), "+",
			fmt.Sprintf("//Folder[Protocol/Type=%s]//LabResults//%s", g, g)))
		p.Add(MustRule(fmt.Sprintf("R3.%d", i+1), "-",
			fmt.Sprintf("//%s[Cholesterol > 250]", g)))
	}
	return p
}

// ResearcherGroups returns the protocol group names G1..Gn used by the
// researcher policy variants of the experiments.
func ResearcherGroups(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("G%d", i+1)
	}
	return out
}

// AbstractPolicyRS returns the two-rule policy of Figure 3 of the paper,
// expressed on the abstract document {a,b,c,d}:
//
//	R: +, //b[c]/d
//	S: -, //c
func AbstractPolicyRS() *Policy {
	return NewPolicy("abstract",
		MustRule("R", "+", "//b[c]/d"),
		MustRule("S", "-", "//c"),
	)
}

// AbstractPolicyFigure7 returns the four-rule policy of Figure 7:
//
//	R: +, /a[d = 4]/c
//	S: -, //c/e[m=3]
//	T: +, //c[//i = 3]//f
//	U: +, //h[k = 2]
func AbstractPolicyFigure7() *Policy {
	return NewPolicy("figure7",
		MustRule("R", "+", "/a[d = 4]/c"),
		MustRule("S", "-", "//c/e[m=3]"),
		MustRule("T", "+", "//c[//i = 3]//f"),
		MustRule("U", "+", "//h[k = 2]"),
	)
}
