package accessrule

import (
	"errors"
	"strings"
	"testing"

	"xmlac/internal/xpath"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("D1", "+", "//Folder/Admin")
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign != Permit || r.Object.String() != "//Folder/Admin" {
		t.Fatalf("unexpected rule %+v", r)
	}
	r, err = ParseRule("D3", "deny", "//Act[RPhys != USER]/Details")
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign != Deny {
		t.Fatal("expected Deny")
	}
	if _, err := ParseRule("X", "?", "//a"); !errors.Is(err, ErrInvalidRule) {
		t.Fatalf("expected ErrInvalidRule for bad sign, got %v", err)
	}
	if _, err := ParseRule("X", "+", "not-a-path"); !errors.Is(err, ErrInvalidRule) {
		t.Fatalf("expected ErrInvalidRule for bad path, got %v", err)
	}
	if got := r.String(); !strings.Contains(got, "D3") || !strings.Contains(got, "-") {
		t.Fatalf("rule String() = %q", got)
	}
}

func TestPolicyAddBindsUser(t *testing.T) {
	p := NewPolicy("DrHouse", MustRule("D2", "+", "//MedActs[//RPhys = USER]"))
	if len(p.Rules) != 1 {
		t.Fatal("rule not added")
	}
	if !strings.Contains(p.Rules[0].Object.String(), "DrHouse") {
		t.Fatalf("USER not bound: %s", p.Rules[0].Object)
	}
	// Auto ID assignment.
	p.Add(Rule{Sign: Deny, Object: xpath.MustParse("//x")})
	if p.Rules[1].ID == "" {
		t.Fatal("ID not assigned")
	}
	if !strings.Contains(p.String(), "DrHouse") {
		t.Fatal("policy String missing subject")
	}
}

func TestPolicyAccessors(t *testing.T) {
	p := DoctorPolicy("DrA")
	if len(p.PositiveRules()) != 3 || len(p.NegativeRules()) != 1 {
		t.Fatalf("doctor policy split = %d/%d", len(p.PositiveRules()), len(p.NegativeRules()))
	}
	labels := p.Labels()
	for _, want := range []string{"Folder", "Admin", "MedActs", "RPhys", "Act", "Details", "Analysis"} {
		if _, ok := labels[want]; !ok {
			t.Errorf("missing label %s", want)
		}
	}
	clone := p.Clone()
	if clone.String() != p.String() {
		t.Fatal("clone mismatch")
	}
	clone.Rules[0].Object = xpath.MustParse("//Changed")
	if clone.String() == p.String() {
		t.Fatal("clone shares rule objects with original")
	}
}

func TestBuiltinPolicies(t *testing.T) {
	if len(SecretaryPolicy().Rules) != 1 {
		t.Fatal("secretary policy should have one rule")
	}
	r := ResearcherPolicy(ResearcherGroups(10)...)
	if len(r.Rules) != 1+2*10 {
		t.Fatalf("researcher policy with 10 groups has %d rules, want 21", len(r.Rules))
	}
	if len(ResearcherPolicy().Rules) != 3 {
		t.Fatal("default researcher policy should have 3 rules")
	}
	if len(AbstractPolicyRS().Rules) != 2 || len(AbstractPolicyFigure7().Rules) != 4 {
		t.Fatal("abstract policies wrong size")
	}
	if got := ResearcherGroups(3); len(got) != 3 || got[2] != "G3" {
		t.Fatalf("ResearcherGroups = %v", got)
	}
}

func TestSignString(t *testing.T) {
	if Permit.String() != "+" || Deny.String() != "-" {
		t.Fatal("sign strings")
	}
}

func TestMinimizeRedundantRule(t *testing.T) {
	// //Folder/Admin is contained in //Admin; same sign, no negative rule
	// inside the container, so it can be dropped.
	p := NewPolicy("u",
		MustRule("A", "+", "//Admin"),
		MustRule("B", "+", "//Folder/Admin"),
	)
	min, removed := p.Minimize()
	if len(min.Rules) != 1 || len(removed) != 1 || removed[0] != "B" {
		t.Fatalf("Minimize removed %v, kept %d rules", removed, len(min.Rules))
	}
	// The original is untouched.
	if len(p.Rules) != 2 {
		t.Fatal("Minimize mutated the original policy")
	}
}

func TestMinimizeBlockedByOppositeSign(t *testing.T) {
	// A negative rule nested inside the container must prevent the
	// elimination (conservative version of the paper's condition).
	p := NewPolicy("u",
		MustRule("R", "+", "//a"),
		MustRule("S", "+", "//a/b"),
		MustRule("T", "-", "//a/b/c"),
	)
	min, removed := p.Minimize()
	if len(removed) != 0 || len(min.Rules) != 3 {
		t.Fatalf("Minimize should not remove anything, removed %v", removed)
	}
}

func TestMinimizeEquivalentRulesKeepsOne(t *testing.T) {
	p := NewPolicy("u",
		MustRule("A", "+", "//x"),
		MustRule("B", "+", "//x"),
	)
	min, removed := p.Minimize()
	if len(min.Rules) != 1 || len(removed) != 1 || removed[0] != "B" {
		t.Fatalf("expected the later duplicate to be removed, got removed=%v", removed)
	}
}

func TestMinimizeDifferentSignsUntouched(t *testing.T) {
	p := NewPolicy("u",
		MustRule("A", "+", "//a"),
		MustRule("B", "-", "//a/b"),
	)
	_, removed := p.Minimize()
	if len(removed) != 0 {
		t.Fatalf("opposite-sign rules must never eliminate each other: %v", removed)
	}
}
