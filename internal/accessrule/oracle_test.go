package accessrule

import (
	"strings"
	"testing"

	"xmlac/internal/xmlstream"
	"xmlac/internal/xpath"
)

// testHospital builds a small, fully deterministic instance of the Hospital
// document of Figure 1 with two physicians and three folders.
func testHospital() *xmlstream.Node {
	folder := func(name, age, physician, cholesterol, protoType string) *xmlstream.Node {
		f := xmlstream.NewElement("Folder",
			xmlstream.NewElement("Admin",
				xmlstream.Elem("Fname", name),
				xmlstream.Elem("Age", age),
			),
		)
		if protoType != "" {
			f.Append(xmlstream.NewElement("Protocol",
				xmlstream.Elem("Id", "p-"+name),
				xmlstream.Elem("Type", protoType),
			))
		}
		f.Append(
			xmlstream.NewElement("MedActs",
				xmlstream.NewElement("Act",
					xmlstream.Elem("RPhys", physician),
					xmlstream.NewElement("Details",
						xmlstream.Elem("Diagnostic", "diag-"+name),
						xmlstream.Elem("Comments", "comments-"+name),
					),
				),
				xmlstream.NewElement("Act",
					xmlstream.Elem("RPhys", "DrOther"),
					xmlstream.NewElement("Details",
						xmlstream.Elem("Diagnostic", "other-diag-"+name),
					),
				),
			),
			xmlstream.NewElement("Analysis",
				xmlstream.NewElement("LabResults",
					xmlstream.NewElement("G3",
						xmlstream.Elem("Cholesterol", cholesterol),
						xmlstream.Elem("RPhys", physician),
					),
				),
			),
		)
		return f
	}
	return xmlstream.NewElement("Hospital",
		folder("alice", "52", "DrA", "200", "G3"),
		folder("bob", "31", "DrB", "280", "G3"),
		folder("carol", "64", "DrA", "300", ""),
	)
}

func viewString(v *xmlstream.Node) string {
	if v == nil {
		return ""
	}
	return xmlstream.SerializeTree(v, false)
}

func TestSecretaryView(t *testing.T) {
	doc := testHospital()
	view := AuthorizedView(doc, SecretaryPolicy(), ViewOptions{})
	if view == nil {
		t.Fatal("secretary view is empty")
	}
	s := viewString(view)
	// All three Admin subtrees are visible, nothing medical is.
	if c := strings.Count(s, "<Admin>"); c != 3 {
		t.Fatalf("expected 3 Admin elements, got %d in %s", c, s)
	}
	for _, forbidden := range []string{"Diagnostic", "Cholesterol", "MedActs", "Protocol"} {
		if strings.Contains(s, forbidden) {
			t.Errorf("secretary view leaks %s: %s", forbidden, s)
		}
	}
	// Structural rule: the Hospital and Folder ancestors are present.
	if !strings.Contains(s, "<Hospital>") || strings.Count(s, "<Folder>") != 3 {
		t.Errorf("structural path missing: %s", s)
	}
	// Denied ancestors must not expose their text (folders have no direct
	// text here, but Hospital/Folder contain no text either way).
	if strings.Contains(s, "diag-") {
		t.Errorf("denied text leaked: %s", s)
	}
}

func TestDoctorView(t *testing.T) {
	doc := testHospital()
	view := AuthorizedView(doc, DoctorPolicy("DrA"), ViewOptions{})
	s := viewString(view)
	// DrA treats alice and carol: their MedActs are visible.
	if !strings.Contains(s, "diag-alice") || !strings.Contains(s, "diag-carol") {
		t.Errorf("doctor view misses own acts: %s", s)
	}
	// Bob is DrB's patient: his MedActs must not be delivered.
	if strings.Contains(s, "diag-bob") || strings.Contains(s, "other-diag-bob") {
		t.Errorf("doctor view leaks another physician's folder: %s", s)
	}
	// Rule D3: details of acts NOT carried out by DrA are denied even inside
	// an authorized MedActs subtree.
	if strings.Contains(s, "other-diag-alice") || strings.Contains(s, "other-diag-carol") {
		t.Errorf("D3 violated, foreign act details leaked: %s", s)
	}
	// The foreign Act element itself (without Details) remains visible
	// inside an authorized MedActs (most-specific-object only denies the
	// Details subtree).
	if strings.Count(s, "<Act>") < 3 {
		t.Errorf("expected the acts of authorized folders to remain: %s", s)
	}
	// D1: Admin of every folder is visible, including bob's.
	if strings.Count(s, "<Admin>") != 3 {
		t.Errorf("D1 should expose all Admin subtrees: %s", s)
	}
	// D4: Analysis of her patients visible.
	if !strings.Contains(s, "<Analysis>") {
		t.Errorf("D4 missing analysis: %s", s)
	}
}

func TestResearcherView(t *testing.T) {
	doc := testHospital()
	view := AuthorizedView(doc, ResearcherPolicy("G3"), ViewOptions{})
	s := viewString(view)
	// Folders with a protocol: alice (chol 200, allowed) and bob (chol 280,
	// denied by R3).
	if !strings.Contains(s, "<Age>52</Age>") {
		t.Errorf("R1 should expose alice's age: %s", s)
	}
	if !strings.Contains(s, "200") {
		t.Errorf("alice's G3 lab results should be visible: %s", s)
	}
	if strings.Contains(s, "280") {
		t.Errorf("R3 must deny bob's G3 subtree (cholesterol 280 > 250): %s", s)
	}
	if !strings.Contains(s, "<Age>31</Age>") {
		t.Errorf("bob's age is still granted by R1: %s", s)
	}
	// carol has no protocol: nothing of hers is delivered (age 64 absent).
	if strings.Contains(s, "64") || strings.Contains(s, "300") {
		t.Errorf("carol must be invisible to the researcher: %s", s)
	}
	// Administrative and medical details never visible.
	for _, forbidden := range []string{"Fname", "Diagnostic"} {
		if strings.Contains(s, forbidden) {
			t.Errorf("researcher view leaks %s: %s", forbidden, s)
		}
	}
}

func TestClosedPolicyEmptyView(t *testing.T) {
	doc := testHospital()
	view := AuthorizedView(doc, NewPolicy("nobody"), ViewOptions{})
	if view != nil {
		t.Fatalf("closed policy must yield an empty view, got %s", viewString(view))
	}
}

func TestDenialTakesPrecedence(t *testing.T) {
	doc, err := xmlstream.ParseTreeString(`<a><b><c>secret</c></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPolicy("u",
		MustRule("P", "+", "//c"),
		MustRule("N", "-", "//c"),
	)
	view := AuthorizedView(doc, p, ViewOptions{})
	if view != nil && strings.Contains(viewString(view), "secret") {
		t.Fatalf("denial must take precedence over permission on the same object: %s", viewString(view))
	}
}

func TestMostSpecificObjectTakesPrecedence(t *testing.T) {
	doc, err := xmlstream.ParseTreeString(`<a><b><c>deep</c><d>kept</d></b><e>denied</e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	// Deny the whole document, permit //b: b's subtree is visible because
	// the rule on b is more specific than the rule on a.
	p := NewPolicy("u",
		MustRule("N", "-", "/a"),
		MustRule("P", "+", "//b"),
	)
	s := viewString(AuthorizedView(doc, p, ViewOptions{}))
	if !strings.Contains(s, "deep") || !strings.Contains(s, "kept") {
		t.Fatalf("most-specific positive rule should win inside b: %s", s)
	}
	if strings.Contains(s, "denied") {
		t.Fatalf("e is still denied by the outer rule: %s", s)
	}
	// Now the reverse nesting: permit the document, deny //b.
	p2 := NewPolicy("u",
		MustRule("P", "+", "/a"),
		MustRule("N", "-", "//b"),
	)
	s2 := viewString(AuthorizedView(doc, p2, ViewOptions{}))
	if strings.Contains(s2, "deep") || strings.Contains(s2, "kept") {
		t.Fatalf("inner deny must win: %s", s2)
	}
	if !strings.Contains(s2, "denied") {
		t.Fatalf("e is permitted by the outer rule: %s", s2)
	}
}

func TestStructuralRuleDummyNames(t *testing.T) {
	doc, err := xmlstream.ParseTreeString(`<root><secretparent><x>v</x></secretparent></root>`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPolicy("u", MustRule("P", "+", "//x"))
	s := viewString(AuthorizedView(doc, p, ViewOptions{DummyDeniedNames: true}))
	if strings.Contains(s, "secretparent") {
		t.Fatalf("denied ancestor name should be dummied: %s", s)
	}
	if !strings.Contains(s, "<x>v</x>") {
		t.Fatalf("authorized leaf missing: %s", s)
	}
	if strings.Count(s, "<_>") != 2 {
		t.Fatalf("expected two dummied ancestors: %s", s)
	}
}

func TestDecide(t *testing.T) {
	doc := testHospital()
	p := DoctorPolicy("DrA")
	adminAlice := doc.Children[0].Child("Admin")
	if !Decide(doc, p, adminAlice) {
		t.Fatal("admin of alice should be permitted for DrA")
	}
	detailsForeign := doc.Children[0].Child("MedActs").Children[1].Child("Details")
	if Decide(doc, p, detailsForeign) {
		t.Fatal("details of a foreign act must be denied (rule D3)")
	}
	if Decide(doc, NewPolicy("nobody"), adminAlice) {
		t.Fatal("closed policy denies everything")
	}
}

func TestAuthorizedViewWithQuery(t *testing.T) {
	doc := testHospital()
	// Doctor DrA queries folders of patients older than 50.
	q := xpath.MustParse("//Folder[Admin/Age > 50]")
	view := AuthorizedView(doc, DoctorPolicy("DrA"), ViewOptions{Query: q})
	s := viewString(view)
	if !strings.Contains(s, "diag-alice") || !strings.Contains(s, "diag-carol") {
		t.Errorf("query view should keep alice and carol folders: %s", s)
	}
	if strings.Contains(s, "<Age>31</Age>") {
		t.Errorf("bob (31) must be filtered out by the query: %s", s)
	}
	// A query whose predicate relies on denied data returns nothing for the
	// secretary even though the data exists in the document: the predicate
	// is evaluated on the authorized view.
	q2 := xpath.MustParse("//Folder[MedActs/Act/RPhys = DrA]")
	view2 := AuthorizedView(doc, SecretaryPolicy(), ViewOptions{Query: q2})
	if view2 != nil {
		t.Errorf("secretary cannot filter on denied RPhys data: %s", viewString(view2))
	}
	// Empty query result.
	q3 := xpath.MustParse("//Folder[Admin/Age > 1000]")
	if v := AuthorizedView(doc, DoctorPolicy("DrA"), ViewOptions{Query: q3}); v != nil {
		t.Errorf("expected empty query view, got %s", viewString(v))
	}
}

func TestAuthorizedViewNilDocument(t *testing.T) {
	if AuthorizedView(nil, SecretaryPolicy(), ViewOptions{}) != nil {
		t.Fatal("nil document should produce nil view")
	}
}
