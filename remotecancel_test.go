package xmlac_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"xmlac"
	"xmlac/internal/dataset"
	"xmlac/internal/server"
	"xmlac/internal/xmlstream"
)

// TestCanceledContextAbortsRemoteStream: a remote streaming evaluation run
// with ViewOptions.Context stops when the context is canceled — the in-flight
// range request the server is holding open is closed (the handler observes
// r.Context().Done()) and the stream fails with context.Canceled instead of
// waiting out the response. The aborted stream still reports its partial
// metrics exactly once, alongside the error, like any other aborted stream.
func TestCanceledContextAbortsRemoteStream(t *testing.T) {
	srv := server.New(server.Options{})
	xml := xmlstream.SerializeTree(dataset.HospitalFolders(24, 5), false)
	if _, err := srv.Store().RegisterXML("hospital", xml, "cancel-test", xmlac.SchemeECBMHT); err != nil {
		t.Fatal(err)
	}
	// The first few blob fetches of the evaluation pass through (reader and
	// decoder setup), so the cancellation lands mid-scan — the case where the
	// partial-metrics fold matters.
	var blocking atomic.Bool
	var passed atomic.Int32
	arrived := make(chan struct{}, 16)
	release := make(chan struct{})
	handler := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blocking.Load() && strings.HasSuffix(r.URL.Path, "/blob") && passed.Add(1) > 3 {
			select {
			case arrived <- struct{}{}:
			default:
			}
			select {
			case <-r.Context().Done():
				return
			case <-release:
			}
		}
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer close(release)

	doc, err := xmlac.OpenRemote(ts.URL+"/docs/hospital", xmlac.DeriveKey("cancel-test"))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := xmlac.DoctorPolicy("DrA").Compile()
	if err != nil {
		t.Fatal(err)
	}
	blocking.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	type outcome struct {
		metrics *xmlac.Metrics
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		m, err := doc.StreamAuthorizedViewCompiled(cp, xmlac.ViewOptions{Context: ctx}, &buf)
		done <- outcome{m, err}
	}()
	<-arrived // the evaluation's range request is in flight, held open
	cancel()
	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("aborted stream returned %v, want context.Canceled", out.err)
	}
	if out.metrics == nil {
		t.Fatal("aborted stream returned nil metrics; its partial work is unaccounted")
	}
	if out.metrics.RoundTrips <= 0 {
		t.Fatalf("partial metrics carry no wire activity: %+v", out.metrics)
	}
}
