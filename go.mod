module xmlac

go 1.22
