package xmlac

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	itrace "xmlac/internal/trace"
)

// Trace is a bounded recorder of evaluation spans. One Trace is attached to
// any number of evaluations via ViewOptions.Trace (it is safe for concurrent
// use — a server keeps one per process); each traced evaluation records its
// phase aggregates and remote-fetch spans into the ring, newest spans
// evicting the oldest. Attaching a Trace also turns on the per-phase timers
// that fill Metrics.PhaseBreakdown.
type Trace struct {
	rec *itrace.Recorder
}

// NewTrace builds a Trace retaining up to capacity spans (capacity <= 0
// selects an internal default of a few hundred).
func NewTrace(capacity int) *Trace {
	return &Trace{rec: itrace.NewRecorder(capacity)}
}

// Len returns the number of spans currently retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.rec.Len()
}

// Total returns the number of spans ever recorded (retained or evicted).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.rec.Total()
}

// WriteJSONL writes up to n of the most recent spans, oldest first, as one
// JSON object per line (n <= 0 writes every retained span).
func (t *Trace) WriteJSONL(w io.Writer, n int) error {
	if t == nil {
		return nil
	}
	return t.rec.WriteJSONL(w, n)
}

// NewTraceID returns a fresh random trace ID (16 hex characters) fit for
// ViewOptions.TraceID and for the X-Request-Id header: a remote client that
// evaluates under a NewTraceID can fetch the server's side of the same
// operation from GET /debug/trace?id= afterwards and merge the two span sets.
func NewTraceID() string {
	return itrace.NewSpanID()
}

// TraceSpan is one completed, timed unit of work retained by a Trace: trace
// and span identity (TraceID groups one logical operation across trust
// domains; Parent links a span under the evaluation that caused it), timing,
// byte/chunk attributes and the recorder-assigned sequence number.
type TraceSpan = itrace.Span

// TraceFilter selects a subset of a Trace's retained spans: by trace ID, by
// sequence number (spans recorded after Since), or the newest N.
type TraceFilter = itrace.Filter

// Spans returns the retained spans matching the filter, oldest first.
func (t *Trace) Spans(f TraceFilter) []TraceSpan {
	if t == nil {
		return nil
	}
	return t.rec.Spans(f)
}

// RecordSpan appends one externally produced span to the ring — a server
// records its request-handling spans here so they sit next to the evaluation
// spans under the same trace IDs. The recorder assigns the sequence number.
func (t *Trace) RecordSpan(s TraceSpan) {
	if t == nil {
		return
	}
	t.rec.Record(s)
}

// WriteJSONLFiltered writes the spans matching the filter (oldest first) as
// one JSON object per line — the machinery behind GET /debug/trace's ?id=
// and ?since= query parameters.
func (t *Trace) WriteJSONLFiltered(w io.Writer, f TraceFilter) error {
	if t == nil {
		return nil
	}
	return t.rec.WriteJSONLFiltered(w, f)
}

// ParseTraceJSONL parses spans in the JSONL form written by WriteJSONL (and
// served by GET /debug/trace), one JSON object per line, blank lines
// ignored. This is how a client reads back the server-side spans of its own
// trace before merging them into one Chrome trace.
func ParseTraceJSONL(r io.Reader) ([]TraceSpan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []TraceSpan
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s TraceSpan
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("xmlac: trace JSONL line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("xmlac: reading trace JSONL: %w", err)
	}
	return out, nil
}

// TraceLane is one named process row of a merged Chrome trace: the span set
// of one side of the trust boundary ("client SOE", "untrusted server").
type TraceLane struct {
	Name  string
	Spans []TraceSpan
}

// WriteMergedChromeTrace writes several span sets as one Chrome trace-event
// JSON array, each lane rendered as its own named process on a shared time
// axis. A remote client passes its own spans as one lane and the server's
// /debug/trace?id= spans as another, making a wire stall (a long server
// fetch span under an idle client gap) visually distinguishable from a
// decrypt stall (client phase time with the server idle).
func WriteMergedChromeTrace(w io.Writer, lanes ...TraceLane) error {
	conv := make([]itrace.Lane, len(lanes))
	for i, l := range lanes {
		conv[i] = itrace.Lane{Name: l.Name, Spans: l.Spans}
	}
	return itrace.WriteChromeTraceLanes(w, conv)
}

// WriteChromeTrace writes every retained span as a Chrome trace-event JSON
// array loadable in chrome://tracing or Perfetto. Phase spans are per-phase
// exclusive-time totals anchored at the evaluation start, not exact
// intervals; remote-fetch and resync spans carry real timestamps.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.rec.WriteChromeTrace(w)
}

// context builds the per-evaluation tracing context recording into this
// Trace under the given request-scoped ID.
func (t *Trace) context(id string) *itrace.Context {
	if t == nil {
		return nil
	}
	return itrace.New(t.rec, id)
}

// PhaseBreakdown is the per-phase decomposition of one evaluation's wall
// time, in exclusive nanoseconds: time spent in a nested phase (a remote
// fetch issued while decrypting, a decrypt issued while decoding) is charged
// to the innermost phase only, so the phase sum tracks Metrics.Duration
// instead of double-counting. It is populated only when ViewOptions.Trace is
// set; Metrics.Add folds it field by field like every other counter.
type PhaseBreakdown struct {
	// DecryptNs is ciphertext decryption inside the SOE.
	DecryptNs int64
	// VerifyNs is integrity verification (digest comparison, Merkle root
	// recomputation, CBC chunk hashing).
	VerifyNs int64
	// HashFetchNs is the transfer of Merkle fragment hashes from the
	// untrusted terminal (ECB-MHT).
	HashFetchNs int64
	// DecodeNs is Skip-index decoding (element meta parsing, event
	// production).
	DecodeNs int64
	// SkipNs is the execution of Skip-index subtree jumps.
	SkipNs int64
	// EvalNs is access-rule automata evaluation.
	EvalNs int64
	// EmitNs is view delivery (serialization or tree building).
	EmitNs int64
	// FetchNs is remote HTTP transfer (range requests, manifest and hash
	// fetches); 0 for local evaluations.
	FetchNs int64
	// ResyncNs is version re-synchronization after a remote update; 0 when
	// no re-sync happened.
	ResyncNs int64
}

// Add folds another breakdown into this one (used by Metrics.Add).
func (b *PhaseBreakdown) Add(o *PhaseBreakdown) {
	b.DecryptNs += o.DecryptNs
	b.VerifyNs += o.VerifyNs
	b.HashFetchNs += o.HashFetchNs
	b.DecodeNs += o.DecodeNs
	b.SkipNs += o.SkipNs
	b.EvalNs += o.EvalNs
	b.EmitNs += o.EmitNs
	b.FetchNs += o.FetchNs
	b.ResyncNs += o.ResyncNs
}

// Sum returns the total time attributed to any phase.
func (b PhaseBreakdown) Sum() time.Duration {
	return time.Duration(b.DecryptNs + b.VerifyNs + b.HashFetchNs + b.DecodeNs +
		b.SkipNs + b.EvalNs + b.EmitNs + b.FetchNs + b.ResyncNs)
}

// breakdownFromPhases converts the internal per-phase array.
func breakdownFromPhases(ph [itrace.NumPhases]int64) PhaseBreakdown {
	return PhaseBreakdown{
		DecryptNs:   ph[itrace.PhaseDecrypt],
		VerifyNs:    ph[itrace.PhaseVerify],
		HashFetchNs: ph[itrace.PhaseHashFetch],
		DecodeNs:    ph[itrace.PhaseDecode],
		SkipNs:      ph[itrace.PhaseSkip],
		EvalNs:      ph[itrace.PhaseEval],
		EmitNs:      ph[itrace.PhaseEmit],
		FetchNs:     ph[itrace.PhaseFetch],
		ResyncNs:    ph[itrace.PhaseResync],
	}
}
