package xmlac

import (
	"io"
	"time"

	itrace "xmlac/internal/trace"
)

// Trace is a bounded recorder of evaluation spans. One Trace is attached to
// any number of evaluations via ViewOptions.Trace (it is safe for concurrent
// use — a server keeps one per process); each traced evaluation records its
// phase aggregates and remote-fetch spans into the ring, newest spans
// evicting the oldest. Attaching a Trace also turns on the per-phase timers
// that fill Metrics.PhaseBreakdown.
type Trace struct {
	rec *itrace.Recorder
}

// NewTrace builds a Trace retaining up to capacity spans (capacity <= 0
// selects an internal default of a few hundred).
func NewTrace(capacity int) *Trace {
	return &Trace{rec: itrace.NewRecorder(capacity)}
}

// Len returns the number of spans currently retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.rec.Len()
}

// Total returns the number of spans ever recorded (retained or evicted).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.rec.Total()
}

// WriteJSONL writes up to n of the most recent spans, oldest first, as one
// JSON object per line (n <= 0 writes every retained span).
func (t *Trace) WriteJSONL(w io.Writer, n int) error {
	if t == nil {
		return nil
	}
	return t.rec.WriteJSONL(w, n)
}

// WriteChromeTrace writes every retained span as a Chrome trace-event JSON
// array loadable in chrome://tracing or Perfetto. Phase spans are per-phase
// exclusive-time totals anchored at the evaluation start, not exact
// intervals; remote-fetch and resync spans carry real timestamps.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.rec.WriteChromeTrace(w)
}

// context builds the per-evaluation tracing context recording into this
// Trace under the given request-scoped ID.
func (t *Trace) context(id string) *itrace.Context {
	if t == nil {
		return nil
	}
	return itrace.New(t.rec, id)
}

// PhaseBreakdown is the per-phase decomposition of one evaluation's wall
// time, in exclusive nanoseconds: time spent in a nested phase (a remote
// fetch issued while decrypting, a decrypt issued while decoding) is charged
// to the innermost phase only, so the phase sum tracks Metrics.Duration
// instead of double-counting. It is populated only when ViewOptions.Trace is
// set; Metrics.Add folds it field by field like every other counter.
type PhaseBreakdown struct {
	// DecryptNs is ciphertext decryption inside the SOE.
	DecryptNs int64
	// VerifyNs is integrity verification (digest comparison, Merkle root
	// recomputation, CBC chunk hashing).
	VerifyNs int64
	// HashFetchNs is the transfer of Merkle fragment hashes from the
	// untrusted terminal (ECB-MHT).
	HashFetchNs int64
	// DecodeNs is Skip-index decoding (element meta parsing, event
	// production).
	DecodeNs int64
	// SkipNs is the execution of Skip-index subtree jumps.
	SkipNs int64
	// EvalNs is access-rule automata evaluation.
	EvalNs int64
	// EmitNs is view delivery (serialization or tree building).
	EmitNs int64
	// FetchNs is remote HTTP transfer (range requests, manifest and hash
	// fetches); 0 for local evaluations.
	FetchNs int64
	// ResyncNs is version re-synchronization after a remote update; 0 when
	// no re-sync happened.
	ResyncNs int64
}

// Add folds another breakdown into this one (used by Metrics.Add).
func (b *PhaseBreakdown) Add(o *PhaseBreakdown) {
	b.DecryptNs += o.DecryptNs
	b.VerifyNs += o.VerifyNs
	b.HashFetchNs += o.HashFetchNs
	b.DecodeNs += o.DecodeNs
	b.SkipNs += o.SkipNs
	b.EvalNs += o.EvalNs
	b.EmitNs += o.EmitNs
	b.FetchNs += o.FetchNs
	b.ResyncNs += o.ResyncNs
}

// Sum returns the total time attributed to any phase.
func (b PhaseBreakdown) Sum() time.Duration {
	return time.Duration(b.DecryptNs + b.VerifyNs + b.HashFetchNs + b.DecodeNs +
		b.SkipNs + b.EvalNs + b.EmitNs + b.FetchNs + b.ResyncNs)
}

// breakdownFromPhases converts the internal per-phase array.
func breakdownFromPhases(ph [itrace.NumPhases]int64) PhaseBreakdown {
	return PhaseBreakdown{
		DecryptNs:   ph[itrace.PhaseDecrypt],
		VerifyNs:    ph[itrace.PhaseVerify],
		HashFetchNs: ph[itrace.PhaseHashFetch],
		DecodeNs:    ph[itrace.PhaseDecode],
		SkipNs:      ph[itrace.PhaseSkip],
		EvalNs:      ph[itrace.PhaseEval],
		EmitNs:      ph[itrace.PhaseEmit],
		FetchNs:     ph[itrace.PhaseFetch],
		ResyncNs:    ph[itrace.PhaseResync],
	}
}
