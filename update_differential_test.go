package xmlac_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"

	"xmlac"
	"xmlac/internal/dataset"
	"xmlac/internal/server"
	"xmlac/internal/xmlstream"
)

// The differential update harness: the confidence layer that makes in-place
// updates shippable. For every random edit of every random document it
// checks, edit by edit, that an update-then-view is byte-identical to a
// from-scratch Protect of the edited tree — for all three hospital profiles,
// both locally and through a remote SOE client whose chunk cache re-syncs
// over the wire — with equal SOE metrics. Any divergence (a stale chunk
// served from a cache, a Merkle root not rebuilt, a Skip-index entry left
// behind) shows up as a byte or counter mismatch here.

// harnessRng is a tiny deterministic generator (the harness must replay
// identically from a failure's sequence number).
type harnessRng struct{ state uint64 }

func (r *harnessRng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *harnessRng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *harnessRng) digits(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('0' + r.intn(10))
	}
	return string(out)
}

// editSite is one element of the tree with the location path selecting it.
type editSite struct {
	path   string
	node   *xmlstream.Node
	isRoot bool
}

// collectSites enumerates every element of the serialized document with its
// Edit path (the public API does not expose the tree, so the harness walks a
// re-parse — identical element structure by construction).
func collectSites(xml string) []editSite {
	root, err := xmlstream.ParseTree(bytes.NewReader([]byte(xml)))
	if err != nil {
		panic(err)
	}
	var sites []editSite
	var walk func(n *xmlstream.Node, path string)
	walk = func(n *xmlstream.Node, path string) {
		sites = append(sites, editSite{path: path, node: n, isRoot: path == "/"+n.Name})
		seen := map[string]int{}
		for _, c := range n.Children {
			if c.Kind != xmlstream.ElementNode {
				continue
			}
			seen[c.Name]++
			walk(c, fmt.Sprintf("%s/%s[%d]", path, c.Name, seen[c.Name]))
		}
	}
	walk(root, "/"+root.Name)
	return sites
}

// randomEdit draws one edit valid against the current tree. The mix covers
// both Update regimes: same-length text splices (the in-place fast path) and
// length-changing or structural edits (the re-encode path).
func randomEdit(r *harnessRng, sites []editSite) xmlac.Edit {
	site := sites[r.intn(len(sites))]
	switch k := r.intn(10); {
	case k < 4: // same-length set-text (fast path) on a leaf-ish site
		cur := site.node.Text()
		n := len(cur)
		if n == 0 {
			n = 6
		}
		return xmlac.Edit{Op: xmlac.EditSetText, Path: site.path, Text: r.digits(n)}
	case k < 6: // length-changing set-text
		return xmlac.Edit{Op: xmlac.EditSetText, Path: site.path, Text: r.digits(1 + r.intn(24))}
	case k < 8: // insert a small subtree
		return xmlac.Edit{Op: xmlac.EditInsert, Path: site.path,
			XML: fmt.Sprintf("<Note><Id>N%s</Id><Body>%s</Body></Note>", r.digits(5), r.digits(8+r.intn(30)))}
	case k < 9: // replace (never the root)
		if site.isRoot {
			return xmlac.Edit{Op: xmlac.EditSetText, Path: site.path, Text: r.digits(4)}
		}
		return xmlac.Edit{Op: xmlac.EditReplace, Path: site.path,
			XML: fmt.Sprintf("<Swapped><Was>%s</Was><Now>%s</Now></Swapped>", site.node.Name, r.digits(6+r.intn(20)))}
	default: // delete (never the root)
		if site.isRoot {
			return xmlac.Edit{Op: xmlac.EditSetText, Path: site.path, Text: r.digits(4)}
		}
		return xmlac.Edit{Op: xmlac.EditDelete, Path: site.path}
	}
}

// zeroWire blanks the fields that legitimately differ between a local and a
// remote evaluation of the same document (transfer accounting and wall-clock
// first-byte timing); every SOE counter must still match exactly.
func zeroWire(m xmlac.Metrics) xmlac.Metrics {
	m.BytesOnWire = 0
	m.RoundTrips = 0
	m.ChunksReused = 0
	m.TimeToFirstByte = 0
	m.Duration = 0
	return m
}

func TestDifferentialUpdateHarness(t *testing.T) {
	sequences := 100
	if testing.Short() {
		sequences = 20
	}
	const editsPerSequence = 3
	profiles := map[string]xmlac.Policy{
		"secretary":  xmlac.SecretaryPolicy(),
		"doctor":     xmlac.DoctorPolicy("DrA"),
		"researcher": xmlac.ResearcherPolicy(),
	}
	compiled := map[string]*xmlac.CompiledPolicy{}
	for name, p := range profiles {
		cp, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		compiled[name] = cp
	}

	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	key := xmlac.DeriveKey("xmlac-serve default key for differential")

	for seq := 0; seq < sequences; seq++ {
		rng := &harnessRng{state: uint64(0xD1F + seq)}
		folders := 3 + rng.intn(4)
		xml := xmlstream.SerializeTree(dataset.HospitalFolders(folders, uint64(1000+seq)), false)

		// The live document: protected once, then updated in place. The
		// server holds its own copy of the same document (same default key
		// derivation), updated through the same edits, serving the remote
		// client.
		liveDoc, err := xmlac.ParseDocumentString(xml)
		if err != nil {
			t.Fatal(err)
		}
		live, err := xmlac.Protect(liveDoc, key, xmlac.SchemeECBMHT)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Store().RegisterXML("differential", xml, "", xmlac.SchemeECBMHT); err != nil {
			t.Fatal(err)
		}
		remoteDoc, err := xmlac.OpenRemote(ts.URL+"/docs/differential", key)
		if err != nil {
			t.Fatal(err)
		}
		// The mirror: a plain document the same edits are applied to with
		// the reference ApplyEdits, re-protected from scratch after every
		// edit — the ground truth Update must match.
		mirror, err := xmlac.ParseDocumentString(xml)
		if err != nil {
			t.Fatal(err)
		}
		mirrorXML := xml

		for step := 0; step < editsPerSequence; step++ {
			edit := randomEdit(rng, collectSites(mirrorXML))
			if _, _, err := live.Update(key, []xmlac.Edit{edit}); err != nil {
				t.Fatalf("seq %d step %d: update: %v (edit %+v)", seq, step, err, edit)
			}
			entry, err := srv.Store().Entry("differential")
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := entry.Update([]xmlac.Edit{edit}); err != nil {
				t.Fatalf("seq %d step %d: server update: %v", seq, step, err)
			}
			if err := mirror.ApplyEdits(edit); err != nil {
				t.Fatalf("seq %d step %d: mirror: %v", seq, step, err)
			}
			mirrorXML = mirror.XML()
			scratchDoc, err := xmlac.ParseDocumentString(mirrorXML)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := xmlac.Protect(scratchDoc, key, xmlac.SchemeECBMHT)
			if err != nil {
				t.Fatalf("seq %d step %d: from-scratch protect: %v", seq, step, err)
			}
			if lv, sv := live.Version(), uint64(step+2); lv != sv {
				t.Fatalf("seq %d step %d: live version %d, want %d", seq, step, lv, sv)
			}

			// The remote client re-syncs its chunk cache to the new version
			// (delta-driven after the first step).
			if changed, err := remoteDoc.Revalidate(); err != nil || !changed {
				t.Fatalf("seq %d step %d: revalidate: changed=%v err=%v", seq, step, changed, err)
			}

			for name, cp := range compiled {
				var scratchBuf bytes.Buffer
				scratchMetrics, err := scratch.StreamAuthorizedViewCompiled(key, cp, xmlac.ViewOptions{}, &scratchBuf)
				if err != nil {
					t.Fatalf("seq %d step %d %s: scratch view: %v", seq, step, name, err)
				}
				var liveBuf bytes.Buffer
				liveMetrics, err := live.StreamAuthorizedViewCompiled(key, cp, xmlac.ViewOptions{}, &liveBuf)
				if err != nil {
					t.Fatalf("seq %d step %d %s: updated view: %v", seq, step, name, err)
				}
				if !bytes.Equal(liveBuf.Bytes(), scratchBuf.Bytes()) {
					t.Fatalf("seq %d step %d %s: update-then-view differs from protect-from-scratch (%d vs %d bytes)\nedit: %+v",
						seq, step, name, liveBuf.Len(), scratchBuf.Len(), edit)
				}
				if zeroWire(*liveMetrics) != zeroWire(*scratchMetrics) {
					t.Fatalf("seq %d step %d %s: SOE metrics diverge:\nupdated: %+v\nscratch: %+v",
						seq, step, name, liveMetrics, scratchMetrics)
				}
				var remoteBuf bytes.Buffer
				remoteMetrics, err := remoteDoc.StreamAuthorizedViewCompiled(cp, xmlac.ViewOptions{}, &remoteBuf)
				if err != nil {
					t.Fatalf("seq %d step %d %s: remote view: %v", seq, step, name, err)
				}
				if !bytes.Equal(remoteBuf.Bytes(), scratchBuf.Bytes()) {
					t.Fatalf("seq %d step %d %s: remote view differs from protect-from-scratch (%d vs %d bytes)",
						seq, step, name, remoteBuf.Len(), scratchBuf.Len())
				}
				if zeroWire(*remoteMetrics) != zeroWire(*scratchMetrics) {
					t.Fatalf("seq %d step %d %s: remote SOE metrics diverge:\nremote: %+v\nscratch: %+v",
						seq, step, name, remoteMetrics, scratchMetrics)
				}
			}
		}
	}
}
