package xmlac

import (
	"reflect"
	"testing"

	"xmlac/internal/analysis"
	"xmlac/internal/analysis/metricsfold"
)

// TestMetricsAddFoldsEveryField pins, by reflection, that Metrics.Add folds
// every field of Metrics: a counter added to the struct without extending
// Add (as BytesOnWire once was in the remote-SOE work) would be silently
// dropped by every aggregator (server sessions, lifetime totals). The test
// stamps each field — recursing into nested structs like PhaseBreakdown —
// with a distinct non-zero value and checks that adding onto a zero value
// reproduces it, and that adding twice doubles it.
func TestMetricsAddFoldsEveryField(t *testing.T) {
	counter := 0
	var stamp func(v reflect.Value, path string)
	stamp = func(v reflect.Value, path string) {
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			name := path + tp.Field(i).Name
			counter++
			switch f.Kind() {
			case reflect.Int64: // int64 counters and time.Duration
				f.SetInt(int64(100 + counter))
			case reflect.Float64:
				f.SetFloat(float64(counter) + 0.5)
			case reflect.Struct:
				stamp(f, name+".")
			default:
				t.Fatalf("Metrics.%s has kind %s: teach this test (and Metrics.Add) how to fold it",
					name, f.Kind())
			}
		}
	}
	var checkDoubled func(got, want reflect.Value, path string)
	checkDoubled = func(got, want reflect.Value, path string) {
		tp := got.Type()
		for i := 0; i < got.NumField(); i++ {
			name := path + tp.Field(i).Name
			switch f := got.Field(i); f.Kind() {
			case reflect.Int64:
				if w := 2 * want.Field(i).Int(); f.Int() != w {
					t.Errorf("Metrics.Add drops or mis-folds %s: got %d, want %d", name, f.Int(), w)
				}
			case reflect.Float64:
				if w := 2 * want.Field(i).Float(); f.Float() != w {
					t.Errorf("Metrics.Add drops or mis-folds %s: got %g, want %g", name, f.Float(), w)
				}
			case reflect.Struct:
				checkDoubled(f, want.Field(i), name+".")
			}
		}
	}

	var src Metrics
	stamp(reflect.ValueOf(&src).Elem(), "")

	var acc Metrics
	acc.Add(&src)
	if acc != src {
		t.Fatalf("Add onto a zero Metrics must reproduce the source:\ngot  %+v\nwant %+v", acc, src)
	}
	acc.Add(&src)
	checkDoubled(reflect.ValueOf(acc), reflect.ValueOf(src), "")
}

// TestMetricsFoldAnalyzerSeesSameFields pins that the metricsfold vet
// analyzer and this file's reflection walk agree on what "every field of
// Metrics" means. The two guards overlap on purpose — the test catches a
// dropped field at test time, the analyzer at vet time and for accumulators
// without such a test — but they only back each other up if neither's view
// of the struct drifts (e.g. the analyzer recursing where the test does
// not).
func TestMetricsFoldAnalyzerSeesSameFields(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the package via the go tool")
	}
	pkgs, err := analysis.Load(".", "xmlac")
	if err != nil {
		t.Fatalf("loading package xmlac: %v", err)
	}
	var pkg *analysis.Package
	for _, p := range pkgs {
		if p.Path == "xmlac" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("package xmlac not among loaded packages")
	}
	obj := pkg.Types.Scope().Lookup("Metrics")
	if obj == nil {
		t.Fatal("type Metrics not found in package scope")
	}
	analyzerView := metricsfold.LeafFields(obj.Type())

	var reflectView []string
	var walk func(tp reflect.Type, prefix string)
	walk = func(tp reflect.Type, prefix string) {
		for i := 0; i < tp.NumField(); i++ {
			f := tp.Field(i)
			if f.Type.Kind() == reflect.Struct {
				walk(f.Type, prefix+f.Name+".")
				continue
			}
			reflectView = append(reflectView, prefix+f.Name)
		}
	}
	walk(reflect.TypeOf(Metrics{}), "")

	if !reflect.DeepEqual(analyzerView, reflectView) {
		t.Errorf("metricsfold and the reflection test disagree on Metrics' fields:\nanalyzer: %v\nreflect:  %v",
			analyzerView, reflectView)
	}
}
