package xmlac

import (
	"reflect"
	"testing"
)

// TestMetricsAddFoldsEveryField pins, by reflection, that Metrics.Add folds
// every field of Metrics: a counter added to the struct without extending
// Add (as BytesOnWire once was in the remote-SOE work) would be silently
// dropped by every aggregator (server sessions, lifetime totals). The test
// stamps each field with a distinct non-zero value and checks that adding
// onto a zero value reproduces it, and that adding twice doubles it.
func TestMetricsAddFoldsEveryField(t *testing.T) {
	var src Metrics
	v := reflect.ValueOf(&src).Elem()
	tp := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64: // int64 counters and time.Duration
			f.SetInt(int64(100 + i))
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		default:
			t.Fatalf("Metrics.%s has kind %s: teach this test (and Metrics.Add) how to fold it",
				tp.Field(i).Name, f.Kind())
		}
	}

	var acc Metrics
	acc.Add(&src)
	if acc != src {
		t.Fatalf("Add onto a zero Metrics must reproduce the source:\ngot  %+v\nwant %+v", acc, src)
	}
	acc.Add(&src)
	av := reflect.ValueOf(acc)
	for i := 0; i < av.NumField(); i++ {
		name := tp.Field(i).Name
		switch f := av.Field(i); f.Kind() {
		case reflect.Int64:
			if want := 2 * v.Field(i).Int(); f.Int() != want {
				t.Errorf("Metrics.Add drops or mis-folds %s: got %d, want %d", name, f.Int(), want)
			}
		case reflect.Float64:
			if want := 2 * v.Field(i).Float(); f.Float() != want {
				t.Errorf("Metrics.Add drops or mis-folds %s: got %g, want %g", name, f.Float(), want)
			}
		}
	}
}
