package xmlac

import (
	"reflect"
	"testing"
)

// TestMetricsAddFoldsEveryField pins, by reflection, that Metrics.Add folds
// every field of Metrics: a counter added to the struct without extending
// Add (as BytesOnWire once was in the remote-SOE work) would be silently
// dropped by every aggregator (server sessions, lifetime totals). The test
// stamps each field — recursing into nested structs like PhaseBreakdown —
// with a distinct non-zero value and checks that adding onto a zero value
// reproduces it, and that adding twice doubles it.
func TestMetricsAddFoldsEveryField(t *testing.T) {
	counter := 0
	var stamp func(v reflect.Value, path string)
	stamp = func(v reflect.Value, path string) {
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			name := path + tp.Field(i).Name
			counter++
			switch f.Kind() {
			case reflect.Int64: // int64 counters and time.Duration
				f.SetInt(int64(100 + counter))
			case reflect.Float64:
				f.SetFloat(float64(counter) + 0.5)
			case reflect.Struct:
				stamp(f, name+".")
			default:
				t.Fatalf("Metrics.%s has kind %s: teach this test (and Metrics.Add) how to fold it",
					name, f.Kind())
			}
		}
	}
	var checkDoubled func(got, want reflect.Value, path string)
	checkDoubled = func(got, want reflect.Value, path string) {
		tp := got.Type()
		for i := 0; i < got.NumField(); i++ {
			name := path + tp.Field(i).Name
			switch f := got.Field(i); f.Kind() {
			case reflect.Int64:
				if w := 2 * want.Field(i).Int(); f.Int() != w {
					t.Errorf("Metrics.Add drops or mis-folds %s: got %d, want %d", name, f.Int(), w)
				}
			case reflect.Float64:
				if w := 2 * want.Field(i).Float(); f.Float() != w {
					t.Errorf("Metrics.Add drops or mis-folds %s: got %g, want %g", name, f.Float(), w)
				}
			case reflect.Struct:
				checkDoubled(f, want.Field(i), name+".")
			}
		}
	}

	var src Metrics
	stamp(reflect.ValueOf(&src).Elem(), "")

	var acc Metrics
	acc.Add(&src)
	if acc != src {
		t.Fatalf("Add onto a zero Metrics must reproduce the source:\ngot  %+v\nwant %+v", acc, src)
	}
	acc.Add(&src)
	checkDoubled(reflect.ValueOf(acc), reflect.ValueOf(src), "")
}
